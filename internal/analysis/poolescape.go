package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// PoolEscape enforces the pooled-buffer discipline of the wire hot paths
// (internal/mpi/net/wire.go): a value taken from a sync.Pool must be handed
// back. Concretely, for every x := pool.Get() (optionally through a type
// assertion) inside one function:
//
//   - storing x into a struct field, map, slice element, package-level
//     variable or channel is reported — the pooled value has escaped the
//     frame that owns it, and nothing guarantees a matching Put;
//   - returning x is reported — ownership transfers invisibly, so the
//     constructor idiom (newFrame, readFrameP) must carry a //lint:ignore
//     documenting who releases;
//   - otherwise every path from the Get to a return must release x: pass it
//     to some call (pool.Put(x), a consuming helper, a goroutine) or invoke
//     a releasing method on it (Put/Release/Close/Free/Recycle/Send...).
//     The PR-6 bug class this catches is the early error return that leaks
//     the buffer the happy path recycles.
//
// The check is intraprocedural and conservative: wrappers around Get are not
// traced, and a release inside a conditional does not count for the paths
// that bypass it.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc:  "sync.Pool values must not escape their frame and must be released on every path",
	Run:  runPoolEscape,
}

// releasingMethod matches method names that plausibly hand a pooled value
// back (directly or by documented internal contract, like frame.send).
var releasingMethod = regexp.MustCompile(`(?i)(put|release|close|free|recycle|send|flush)`)

func runPoolEscape(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPoolFunc(pass, fn)
		}
	}
}

// poolGetCall reports whether call is <pool>.Get() for a sync.Pool-typed
// receiver. Without type information it falls back to the receiver's
// spelling ending in "Pool" — the naming convention of every pool in this
// repo and the fixtures.
func poolGetCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" || len(call.Args) != 0 {
		return false
	}
	if t := pass.TypeOf(sel.X); t != nil {
		for {
			ptr, ok := t.(*types.Pointer)
			if !ok {
				break
			}
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
		}
		return false
	}
	// Type info unavailable: fall back to naming convention.
	switch x := sel.X.(type) {
	case *ast.Ident:
		return strings.HasSuffix(x.Name, "Pool")
	case *ast.SelectorExpr:
		return strings.HasSuffix(x.Sel.Name, "Pool")
	}
	return false
}

// unwrapAssert strips a type assertion: pool.Get().(*T) -> pool.Get().
func unwrapAssert(e ast.Expr) ast.Expr {
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		return ta.X
	}
	return e
}

func checkPoolFunc(pass *Pass, fn *ast.FuncDecl) {
	// Find every x := pool.Get() binding in the function (including if-init
	// statements) and check each tracked variable independently.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := unwrapAssert(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !poolGetCall(pass, call) {
			return true
		}
		if len(as.Lhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		tr := &poolTracker{pass: pass, fn: fn, get: as, names: map[string]bool{id.Name: true}}
		tr.collectAliases(fn.Body)
		tr.check()
		return true
	})
}

// poolTracker follows one pooled value through its function.
type poolTracker struct {
	pass     *Pass
	fn       *ast.FuncDecl
	get      *ast.AssignStmt // the x := pool.Get() statement
	names    map[string]bool // x and its aliases
	reported bool
}

// collectAliases adds y for statements of the form y := x or y := x.(T).
func (tr *poolTracker) collectAliases(body *ast.BlockStmt) {
	for {
		added := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as == tr.get || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			src, ok := unwrapAssert(as.Rhs[0]).(*ast.Ident)
			if !ok || !tr.names[src.Name] {
				return true
			}
			dst, ok := as.Lhs[0].(*ast.Ident)
			if ok && dst.Name != "_" && !tr.names[dst.Name] {
				tr.names[dst.Name] = true
				added = true
			}
			return true
		})
		if !added {
			return
		}
	}
}

func (tr *poolTracker) isTracked(e ast.Expr) bool {
	id, ok := unwrapAssert(e).(*ast.Ident)
	return ok && tr.names[id.Name]
}

// report emits at most one diagnostic per Get, anchored at the Get so a
// single //lint:ignore baselines the whole finding.
func (tr *poolTracker) report(format string, args ...any) {
	if tr.reported {
		return
	}
	tr.reported = true
	tr.pass.Reportf(tr.get.Pos(), format, args...)
}

func (tr *poolTracker) check() {
	// Escapes and returns are position-independent: scan the whole body.
	ast.Inspect(tr.fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if !tr.isTracked(rhs) || i >= len(st.Lhs) {
					continue
				}
				switch lhs := st.Lhs[i].(type) {
				case *ast.SelectorExpr:
					tr.report("pooled value escapes to field %s (line %d) without a guaranteed Put",
						lhs.Sel.Name, tr.pass.Fset.Position(st.Pos()).Line)
				case *ast.IndexExpr:
					tr.report("pooled value escapes into a map or slice element (line %d) without a guaranteed Put",
						tr.pass.Fset.Position(st.Pos()).Line)
				case *ast.Ident:
					if obj := tr.objectOf(lhs); obj != nil && obj.Parent() == tr.pass.Pkg.Scope() {
						tr.report("pooled value escapes to package-level variable %s (line %d)",
							lhs.Name, tr.pass.Fset.Position(st.Pos()).Line)
					}
				}
			}
		case *ast.SendStmt:
			if tr.isTracked(st.Value) {
				tr.report("pooled value escapes into a channel send (line %d) without a guaranteed Put",
					tr.pass.Fset.Position(st.Pos()).Line)
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if tr.isTracked(res) {
					tr.report("pooled value returned (line %d): ownership transfer needs a documented release contract",
						tr.pass.Fset.Position(st.Pos()).Line)
				}
			}
		case *ast.CompositeLit:
			for _, elt := range st.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if tr.isTracked(elt) {
					tr.report("pooled value escapes into a composite literal (line %d) without a guaranteed Put",
						tr.pass.Fset.Position(st.Pos()).Line)
				}
			}
		}
		return true
	})
	if tr.reported {
		return
	}
	// No escapes: require a release on every path from the Get onward.
	stmts, ok := stmtsAfter(tr.fn.Body, tr.get)
	if !ok {
		return // Get buried in a construct we don't model; stay silent
	}
	released, diverged := tr.walk(stmts, false)
	if !released && !diverged {
		tr.report("pooled value is not released on the fall-through path of %s", tr.fn.Name.Name)
	}
}

func (tr *poolTracker) objectOf(id *ast.Ident) types.Object {
	if tr.pass.Info == nil {
		return nil
	}
	if obj := tr.pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return tr.pass.Info.Defs[id]
}

// stmtsAfter returns the statements following target in its enclosing block,
// searching nested blocks and if-init statements.
func stmtsAfter(body *ast.BlockStmt, target ast.Stmt) ([]ast.Stmt, bool) {
	var find func(list []ast.Stmt) ([]ast.Stmt, bool)
	find = func(list []ast.Stmt) ([]ast.Stmt, bool) {
		for i, s := range list {
			if s == target {
				return list[i+1:], true
			}
			switch st := s.(type) {
			case *ast.BlockStmt:
				if r, ok := find(st.List); ok {
					return r, true
				}
			case *ast.IfStmt:
				if st.Init == target {
					// The tracked value lives only inside the if; check its body.
					return st.Body.List, true
				}
				if r, ok := find(st.Body.List); ok {
					return r, true
				}
				if eb, ok := st.Else.(*ast.BlockStmt); ok {
					if r, ok := find(eb.List); ok {
						return r, true
					}
				}
			case *ast.ForStmt:
				if r, ok := find(st.Body.List); ok {
					return r, true
				}
			case *ast.RangeStmt:
				if r, ok := find(st.Body.List); ok {
					return r, true
				}
			}
		}
		return nil, false
	}
	return find(body.List)
}

// releasesIn reports whether the subtree contains a release of the tracked
// value: the value passed as a call argument, or a releasing-named method
// invoked on it.
func (tr *poolTracker) releasesIn(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if tr.isTracked(arg) {
				found = true
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if tr.isTracked(sel.X) && releasingMethod.MatchString(sel.Sel.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}

// terminates reports whether a statement unconditionally leaves the
// function.
func terminates(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// walk evaluates the release obligation over a statement list. It returns
// whether the value is certainly released when control falls off the end of
// the list, and whether every path through the list diverges (returns or
// panics). Returns reached while unreleased are reported.
func (tr *poolTracker) walk(stmts []ast.Stmt, released bool) (rel, diverged bool) {
	for _, s := range stmts {
		if tr.reported {
			return true, false
		}
		switch st := s.(type) {
		case *ast.ReturnStmt:
			if !released && !tr.releasesIn(st) {
				tr.report("pooled value leaks on the return at line %d",
					tr.pass.Fset.Position(st.Pos()).Line)
			}
			return released, true
		case *ast.DeferStmt:
			if tr.releasesIn(st.Call) {
				released = true
			}
		case *ast.IfStmt:
			if st.Init != nil && tr.releasesIn(st.Init) {
				released = true
			}
			condReleases := tr.releasesIn(st.Cond)
			bRel, bDiv := tr.walk(st.Body.List, released || condReleases)
			eRel, eDiv := released || condReleases, false
			switch eb := st.Else.(type) {
			case *ast.BlockStmt:
				eRel, eDiv = tr.walk(eb.List, released || condReleases)
			case *ast.IfStmt:
				eRel, eDiv = tr.walk([]ast.Stmt{eb}, released || condReleases)
			}
			switch {
			case bDiv && eDiv:
				return released, true
			case bDiv:
				released = eRel
			case eDiv:
				released = bRel
			default:
				released = bRel && eRel
			}
		case *ast.BlockStmt:
			var div bool
			released, div = tr.walk(st.List, released)
			if div {
				return released, true
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.ForStmt, *ast.RangeStmt, *ast.GoStmt:
			// Conservative: a release inside a conditional construct is not
			// guaranteed on every iteration/path, but check the branches for
			// unreleased returns and accept an unconditional release that every
			// branch performs.
			released = released || tr.allBranchesRelease(s)
		default:
			if terminates(s) {
				return released, true
			}
			if tr.releasesIn(s) {
				released = true
			}
		}
	}
	return released, false
}

// allBranchesRelease handles switch/select/loop constructs: it reports
// returns that leak, and returns true only when every branch both releases
// and exists (so fall-through after the construct is certainly released).
func (tr *poolTracker) allBranchesRelease(s ast.Stmt) bool {
	branches := func(list []ast.Stmt) (all bool) {
		all = len(list) > 0
		for _, c := range list {
			var body []ast.Stmt
			switch cc := c.(type) {
			case *ast.CaseClause:
				body = cc.Body
			case *ast.CommClause:
				body = cc.Body
			}
			rel, div := tr.walk(body, false)
			if !rel && !div {
				all = false
			}
			if div {
				// A diverging branch checked its own returns; it doesn't
				// guarantee release after the construct.
				all = false
			}
		}
		return all
	}
	switch st := s.(type) {
	case *ast.SwitchStmt:
		return branches(st.Body.List)
	case *ast.TypeSwitchStmt:
		return branches(st.Body.List)
	case *ast.SelectStmt:
		return branches(st.Body.List)
	case *ast.ForStmt:
		rel, _ := tr.walk(st.Body.List, false)
		_ = rel
		return false // a loop may run zero times
	case *ast.RangeStmt:
		_, _ = tr.walk(st.Body.List, false)
		return false
	case *ast.GoStmt:
		return tr.releasesIn(st.Call) // goroutine takes ownership via argument
	}
	return false
}
