package analysis

import (
	"path/filepath"
	"testing"
)

// TestFixtures runs every analyzer over its golden fixture package and diffs
// actual diagnostics against the // want comments.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			RunFixture(t, a, filepath.Join("testdata", "src", a.Name))
		})
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not resolve", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Errorf("ByName(nosuch) = non-nil")
	}
}

func TestSplitQuoted(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{`"a" "b c"`, []string{"a", "b c"}},
		{"`x \"quoted\" y`", []string{`x "quoted" y`}},
		{`"one"`, []string{"one"}},
		{"`a` \"b\"", []string{"a", "b"}},
		{`unquoted`, nil},
	}
	for _, c := range cases {
		got := splitQuoted(c.in)
		if len(got) != len(c.want) {
			t.Errorf("splitQuoted(%q) = %q, want %q", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitQuoted(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}
