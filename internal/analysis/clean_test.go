package analysis

import "testing"

// TestTreeIsClean asserts the acceptance criterion the CI job enforces: the
// full analyzer suite runs over this repository and reports nothing. Every
// deliberate exception is a //lint:ignore with a reason, so a new finding
// here is either a real bug or a new exception that must be argued for in
// review.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, module, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	pkgs, err := Load(root, module, []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	var selected []*Package
	for _, p := range pkgs {
		if p.Selected {
			selected = append(selected, p)
		}
	}
	if len(selected) == 0 {
		t.Fatal("no packages selected")
	}
	for _, d := range Lint(selected, All()) {
		t.Errorf("unexpected finding: %s", d)
	}
}
