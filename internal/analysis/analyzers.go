package analysis

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		PoolEscape,
		DetMap,
		DecodeBound,
		CtxFlow,
		MetricName,
	}
}

// ByName resolves a comma-free analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
