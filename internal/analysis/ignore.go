package analysis

import (
	"strings"
)

// //lint:ignore discipline: a finding that is intentional — an ownership
// transfer the analyzer cannot see, for example — is baselined with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory: an ignore that does not say why is itself reported, so the
// baseline stays an auditable record instead of a mute button. "*" ignores
// every analyzer on the line (use sparingly).

const ignorePrefix = "lint:ignore"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int      // line the comment ends on
	analyzers []string // names, or ["*"]
}

type ignoreSet struct {
	directives []ignoreDirective
}

// suppresses reports whether d is covered by a directive on its line or the
// line above.
func (s ignoreSet) suppresses(d Diagnostic) bool {
	for _, ig := range s.directives {
		if ig.file != d.Pos.Filename {
			continue
		}
		if ig.line != d.Pos.Line && ig.line != d.Pos.Line-1 {
			continue
		}
		for _, name := range ig.analyzers {
			if name == "*" || name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// collectIgnores parses every //lint:ignore directive in the package.
// Malformed directives (no analyzer list, or no reason) come back as
// diagnostics so they fail the build instead of silently ignoring nothing —
// or worse, everything.
func collectIgnores(pkg *Package) (ignoreSet, []Diagnostic) {
	var set ignoreSet
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments don't carry directives
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), ignorePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.End())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pkg.Fset.Position(c.Pos()),
						Analyzer: "lintdirective",
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\" (the reason is mandatory)",
					})
					continue
				}
				set.directives = append(set.directives, ignoreDirective{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Split(fields[0], ","),
				})
			}
		}
	}
	return set, bad
}
