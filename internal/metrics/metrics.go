// Package metrics collects the measurements reported by the paper's
// evaluation: response time, number of supersteps, and communication cost
// (messages and bytes shipped between workers). Every engine in this
// repository — GRAPE and the baselines — reports its run through a Stats
// value so the benchmark harness can print directly comparable rows.
package metrics

import (
	"fmt"
	"sync"
	"time"
)

// Stats aggregates the measurements of one engine run.
type Stats struct {
	mu sync.Mutex

	// Engine identifies which system produced the run (e.g. "GRAPE",
	// "Pregel", "GAS", "Blogel").
	Engine string
	// Query identifies the query class (e.g. "SSSP", "CC", "Sim").
	Query string
	// Workers is the number of workers the run used.
	Workers int
	// Mode identifies the execution plane that produced the run ("bsp" or
	// "async"); empty means BSP (the only mode the baselines have).
	Mode string

	// Supersteps is the number of global synchronization rounds. Asynchronous
	// runs have no global rounds and leave it zero; compare Rounds instead.
	Supersteps int
	// Rounds is the mode-neutral depth of the run: the number of supersteps
	// for BSP, and the largest per-worker evaluation-round count for async —
	// the apples-to-apples column of the BSP/async comparison.
	Rounds int
	// MessagesSent counts individual messages shipped between workers
	// (worker-local computation does not count, matching the paper). On a
	// combining communicator this is the post-combine envelope count — the
	// traffic that actually crosses the transport, which is what a
	// Figure-8-style communication-cost report must show.
	MessagesSent int64
	// MessagesEnqueued counts messages as the programs produced them, before
	// per-destination combining. MessagesEnqueued - MessagesSent is the
	// traffic the combiner absorbed; without combining the two are equal.
	MessagesEnqueued int64
	// BytesSent counts the serialized size of shipped messages (post-combine
	// on a combining communicator).
	BytesSent int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration

	perStep      []StepStats
	workerRounds []int64
	workerIdle   []time.Duration
}

// StepStats records the communication of a single superstep.
type StepStats struct {
	Step     int
	Messages int64
	Bytes    int64
}

// AddMessage records that one message of the given serialized size was sent.
// A message that bypasses combining counts both as enqueued and as sent.
func (s *Stats) AddMessage(bytes int) {
	s.mu.Lock()
	s.MessagesSent++
	s.MessagesEnqueued++
	s.BytesSent += int64(bytes)
	if n := len(s.perStep); n > 0 {
		s.perStep[n-1].Messages++
		s.perStep[n-1].Bytes += int64(bytes)
	}
	s.mu.Unlock()
}

// AddEnqueued records one message handed to a combining communicator; the
// combined envelope it folds into is metered separately with AddCombined
// when it ships.
func (s *Stats) AddEnqueued() {
	s.mu.Lock()
	s.MessagesEnqueued++
	s.mu.Unlock()
}

// AddCombined records that one post-combine envelope of the given serialized
// size shipped. Unlike AddMessage it does not touch the pre-combine counter:
// the folded messages were already counted by AddEnqueued.
func (s *Stats) AddCombined(bytes int) {
	s.mu.Lock()
	s.MessagesSent++
	s.BytesSent += int64(bytes)
	if n := len(s.perStep); n > 0 {
		s.perStep[n-1].Messages++
		s.perStep[n-1].Bytes += int64(bytes)
	}
	s.mu.Unlock()
}

// BeginSuperstep starts accounting a new superstep.
func (s *Stats) BeginSuperstep() {
	s.mu.Lock()
	s.Supersteps++
	s.perStep = append(s.perStep, StepStats{Step: s.Supersteps})
	s.mu.Unlock()
}

// PerStep returns a copy of the per-superstep communication breakdown.
func (s *Stats) PerStep() []StepStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]StepStats(nil), s.perStep...)
}

// AddWorkerRound records that worker w executed one evaluation round (a
// superstep it was active in for BSP, one IncEval batch for async).
func (s *Stats) AddWorkerRound(w int) {
	s.mu.Lock()
	s.growWorkers(w)
	s.workerRounds[w]++
	s.mu.Unlock()
}

// AddWorkerIdle records time worker w spent idle: waiting at a superstep
// barrier for slower workers (BSP) or parked waiting for messages (async).
func (s *Stats) AddWorkerIdle(w int, d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.growWorkers(w)
	s.workerIdle[w] += d
	s.mu.Unlock()
}

// growWorkers must be called with mu held.
func (s *Stats) growWorkers(w int) {
	for len(s.workerRounds) <= w {
		s.workerRounds = append(s.workerRounds, 0)
	}
	for len(s.workerIdle) <= w {
		s.workerIdle = append(s.workerIdle, 0)
	}
}

// WorkerRounds returns a copy of the per-worker evaluation-round counts.
func (s *Stats) WorkerRounds() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.workerRounds...)
}

// WorkerIdle returns a copy of the per-worker idle times.
func (s *Stats) WorkerIdle() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.workerIdle...)
}

// TotalIdle returns the idle time summed over all workers.
func (s *Stats) TotalIdle() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total time.Duration
	for _, d := range s.workerIdle {
		total += d
	}
	return total
}

// FinishRun sets the mode label and the mode-neutral Rounds depth: the
// superstep count for BSP runs, the deepest per-worker round count for async
// runs. Engines call it once when a run completes.
func (s *Stats) FinishRun(mode string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Mode = mode
	if s.Supersteps > 0 {
		s.Rounds = s.Supersteps
		return
	}
	for _, r := range s.workerRounds {
		if int(r) > s.Rounds {
			s.Rounds = int(r)
		}
	}
}

// MBShipped returns the total communication volume in megabytes.
func (s *Stats) MBShipped() float64 { return float64(s.BytesSent) / (1024 * 1024) }

// String formats the stats as a one-line report.
func (s *Stats) String() string {
	mode := ""
	if s.Mode != "" && s.Mode != "bsp" {
		mode = "/" + s.Mode
	}
	rounds := fmt.Sprintf("%d supersteps", s.Supersteps)
	if s.Supersteps == 0 && s.Rounds > 0 {
		rounds = fmt.Sprintf("%d async rounds", s.Rounds)
	}
	return fmt.Sprintf("%s%s/%s n=%d: %v, %s, %d msgs, %.3f MB",
		s.Engine, mode, s.Query, s.Workers, s.Elapsed.Round(time.Microsecond),
		rounds, s.MessagesSent, s.MBShipped())
}

// Timer measures elapsed wall-clock time for a run.
type Timer struct{ start time.Time }

// StartTimer returns a running timer.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Stop returns the elapsed duration since the timer started.
func (t Timer) Stop() time.Duration { return time.Since(t.start) }
