// Package metrics collects the measurements reported by the paper's
// evaluation: response time, number of supersteps, and communication cost
// (messages and bytes shipped between workers). Every engine in this
// repository — GRAPE and the baselines — reports its run through a Stats
// value so the benchmark harness can print directly comparable rows.
package metrics

import (
	"fmt"
	"sync"
	"time"
)

// Stats aggregates the measurements of one engine run.
type Stats struct {
	mu sync.Mutex

	// Engine identifies which system produced the run (e.g. "GRAPE",
	// "Pregel", "GAS", "Blogel").
	Engine string
	// Query identifies the query class (e.g. "SSSP", "CC", "Sim").
	Query string
	// Workers is the number of workers the run used.
	Workers int

	// Supersteps is the number of global synchronization rounds.
	Supersteps int
	// MessagesSent counts individual messages shipped between workers
	// (worker-local computation does not count, matching the paper).
	MessagesSent int64
	// BytesSent counts the serialized size of shipped messages.
	BytesSent int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration

	perStep []StepStats
}

// StepStats records the communication of a single superstep.
type StepStats struct {
	Step     int
	Messages int64
	Bytes    int64
}

// AddMessage records that one message of the given serialized size was sent.
func (s *Stats) AddMessage(bytes int) {
	s.mu.Lock()
	s.MessagesSent++
	s.BytesSent += int64(bytes)
	if n := len(s.perStep); n > 0 {
		s.perStep[n-1].Messages++
		s.perStep[n-1].Bytes += int64(bytes)
	}
	s.mu.Unlock()
}

// BeginSuperstep starts accounting a new superstep.
func (s *Stats) BeginSuperstep() {
	s.mu.Lock()
	s.Supersteps++
	s.perStep = append(s.perStep, StepStats{Step: s.Supersteps})
	s.mu.Unlock()
}

// PerStep returns a copy of the per-superstep communication breakdown.
func (s *Stats) PerStep() []StepStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]StepStats(nil), s.perStep...)
}

// MBShipped returns the total communication volume in megabytes.
func (s *Stats) MBShipped() float64 { return float64(s.BytesSent) / (1024 * 1024) }

// String formats the stats as a one-line report.
func (s *Stats) String() string {
	return fmt.Sprintf("%s/%s n=%d: %v, %d supersteps, %d msgs, %.3f MB",
		s.Engine, s.Query, s.Workers, s.Elapsed.Round(time.Microsecond),
		s.Supersteps, s.MessagesSent, s.MBShipped())
}

// Timer measures elapsed wall-clock time for a run.
type Timer struct{ start time.Time }

// StartTimer returns a running timer.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Stop returns the elapsed duration since the timer started.
func (t Timer) Stop() time.Duration { return time.Since(t.start) }
