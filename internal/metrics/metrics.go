// Package metrics collects the measurements reported by the paper's
// evaluation: response time, number of supersteps, and communication cost
// (messages and bytes shipped between workers). Every engine in this
// repository — GRAPE and the baselines — reports its run through a Stats
// value so the benchmark harness can print directly comparable rows.
package metrics

import (
	"fmt"
	"sync"
	"time"

	"grape/internal/obs"
)

// Cluster-wide communication counters, exposed on the debug endpoint. They
// aggregate across queries; the per-query view stays in Stats. The hot paths
// (AddMessage and friends) only touch the Stats fields — already serialized
// by its mutex — and FlushObs folds the totals into these counters once per
// run, so instrumentation adds no contended atomics to message sends.
var (
	obsEnqueued = obs.Counter("grape_comm_messages_enqueued_total",
		"Messages produced by programs, before per-destination combining.")
	obsSent = obs.Counter("grape_comm_messages_sent_total",
		"Message envelopes shipped between workers, post-combine.")
	obsCombined = obs.Counter("grape_comm_messages_combined_total",
		"Post-combine envelopes shipped by a combining communicator.")
	obsBytes = obs.Counter("grape_comm_bytes_sent_total",
		"Serialized bytes of shipped messages, post-combine.")
)

// Stats aggregates the measurements of one engine run.
type Stats struct {
	mu sync.Mutex

	// Engine identifies which system produced the run (e.g. "GRAPE",
	// "Pregel", "GAS", "Blogel").
	Engine string
	// Query identifies the query class (e.g. "SSSP", "CC", "Sim").
	Query string
	// Workers is the number of workers the run used.
	Workers int
	// Mode identifies the execution plane that produced the run ("bsp" or
	// "async"); empty means BSP (the only mode the baselines have).
	Mode string
	// Parallelism is the effective intra-fragment sweep-pool width the query
	// ran with: the configured pool width when the program declared
	// ParallelCapable and a pool was granted, and 1 for sequential runs (the
	// legacy reference path, non-capable programs, and the baselines, which
	// leave it zero). Traces and benchmark rows read it to show pool
	// occupancy.
	Parallelism int

	// Supersteps is the number of global synchronization rounds. Asynchronous
	// runs have no global rounds and leave it zero; compare Rounds instead.
	Supersteps int
	// Rounds is the mode-neutral depth of the run: the number of supersteps
	// for BSP, and the largest per-worker evaluation-round count for async —
	// the apples-to-apples column of the BSP/async comparison.
	Rounds int
	// MessagesSent counts individual messages shipped between workers
	// (worker-local computation does not count, matching the paper). On a
	// combining communicator this is the post-combine envelope count — the
	// traffic that actually crosses the transport, which is what a
	// Figure-8-style communication-cost report must show.
	MessagesSent int64
	// MessagesEnqueued counts messages as the programs produced them, before
	// per-destination combining. MessagesEnqueued - MessagesSent is the
	// traffic the combiner absorbed; without combining the two are equal.
	MessagesEnqueued int64
	// BytesSent counts the serialized size of shipped messages (post-combine
	// on a combining communicator).
	BytesSent int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration

	perStep      []StepStats
	workerRounds []int64
	workerIdle   []time.Duration

	// combined counts post-combine envelopes (AddCombined calls), feeding
	// the obs counter at flush time.
	combined int64
	// flushed remembers what FlushObs already reported, so calling it again
	// (e.g. after a recovery re-run) only adds the delta.
	flushed struct{ enqueued, sent, combined, bytes int64 }

	// noObs suppresses the cluster-wide obs counters for this run; the
	// benchmark harness uses it to measure instrumentation overhead.
	noObs bool
	// trace is the per-query span recorder; nil when tracing is off.
	trace *obs.Trace
}

// StepStats records the communication of a single superstep.
type StepStats struct {
	Step     int
	Messages int64
	Bytes    int64
}

// AddMessage records that one message of the given serialized size was sent.
// A message that bypasses combining counts both as enqueued and as sent.
func (s *Stats) AddMessage(bytes int) {
	s.mu.Lock()
	s.MessagesSent++
	s.MessagesEnqueued++
	s.BytesSent += int64(bytes)
	if n := len(s.perStep); n > 0 {
		s.perStep[n-1].Messages++
		s.perStep[n-1].Bytes += int64(bytes)
	}
	s.mu.Unlock()
}

// AddEnqueued records one message handed to a combining communicator; the
// combined envelope it folds into is metered separately with AddCombined
// when it ships.
func (s *Stats) AddEnqueued() {
	s.mu.Lock()
	s.MessagesEnqueued++
	s.mu.Unlock()
}

// AddCombined records that one post-combine envelope of the given serialized
// size shipped. Unlike AddMessage it does not touch the pre-combine counter:
// the folded messages were already counted by AddEnqueued.
func (s *Stats) AddCombined(bytes int) {
	s.mu.Lock()
	s.MessagesSent++
	s.BytesSent += int64(bytes)
	s.combined++
	if n := len(s.perStep); n > 0 {
		s.perStep[n-1].Messages++
		s.perStep[n-1].Bytes += int64(bytes)
	}
	s.mu.Unlock()
}

// FlushObs folds the run's communication totals into the cluster-wide obs
// counters. The engine calls it when a run completes; calling it again only
// reports what accumulated since the last flush, so recovery re-runs are
// safe. Runs with SetNoMetrics flush nothing.
func (s *Stats) FlushObs() {
	s.mu.Lock()
	if s.noObs {
		s.mu.Unlock()
		return
	}
	enq := s.MessagesEnqueued - s.flushed.enqueued
	sent := s.MessagesSent - s.flushed.sent
	comb := s.combined - s.flushed.combined
	bytes := s.BytesSent - s.flushed.bytes
	s.flushed.enqueued, s.flushed.sent = s.MessagesEnqueued, s.MessagesSent
	s.flushed.combined, s.flushed.bytes = s.combined, s.BytesSent
	s.mu.Unlock()
	if enq > 0 {
		obsEnqueued.Add(float64(enq))
	}
	if sent > 0 {
		obsSent.Add(float64(sent))
	}
	if comb > 0 {
		obsCombined.Add(float64(comb))
	}
	if bytes > 0 {
		obsBytes.Add(float64(bytes))
	}
}

// SetNoMetrics suppresses the cluster-wide obs counters (and any trace) for
// this run. Per-query fields keep accumulating either way.
func (s *Stats) SetNoMetrics(v bool) {
	s.mu.Lock()
	s.noObs = v
	if v {
		s.trace = nil
	}
	s.mu.Unlock()
}

// SetTrace attaches a span recorder to the run. The engine records PEval,
// IncEval, barrier, combine-flush and assemble spans into it.
func (s *Stats) SetTrace(t *obs.Trace) {
	s.mu.Lock()
	if !s.noObs {
		s.trace = t
	}
	s.mu.Unlock()
}

// Trace returns the attached span recorder, or nil. A nil *obs.Trace is safe
// to record into, so callers need no guard.
func (s *Stats) Trace() *obs.Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trace
}

// BeginSuperstep starts accounting a new superstep.
func (s *Stats) BeginSuperstep() {
	s.mu.Lock()
	s.Supersteps++
	s.perStep = append(s.perStep, StepStats{Step: s.Supersteps})
	s.mu.Unlock()
}

// BeginRound makes sure the per-step breakdown covers evaluation round
// `round` (1-based). The async plane calls it as its workers enter rounds:
// unlike BSP supersteps the rounds overlap across workers, so messages are
// attributed to the deepest round any worker has entered — an approximation,
// but one that gives async runs the same per-step communication profile BSP
// gets from BeginSuperstep. It never touches the Supersteps counter.
func (s *Stats) BeginRound(round int) {
	s.mu.Lock()
	for len(s.perStep) < round {
		s.perStep = append(s.perStep, StepStats{Step: len(s.perStep) + 1})
	}
	s.mu.Unlock()
}

// PerStep returns a copy of the per-superstep communication breakdown.
func (s *Stats) PerStep() []StepStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]StepStats(nil), s.perStep...)
}

// AddWorkerRound records that worker w executed one evaluation round (a
// superstep it was active in for BSP, one IncEval batch for async).
func (s *Stats) AddWorkerRound(w int) {
	s.mu.Lock()
	s.growWorkers(w)
	s.workerRounds[w]++
	s.mu.Unlock()
}

// AddWorkerIdle records time worker w spent idle: waiting at a superstep
// barrier for slower workers (BSP) or parked waiting for messages (async).
func (s *Stats) AddWorkerIdle(w int, d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.growWorkers(w)
	s.workerIdle[w] += d
	s.mu.Unlock()
}

// growWorkers must be called with mu held.
func (s *Stats) growWorkers(w int) {
	for len(s.workerRounds) <= w {
		s.workerRounds = append(s.workerRounds, 0)
	}
	for len(s.workerIdle) <= w {
		s.workerIdle = append(s.workerIdle, 0)
	}
}

// WorkerRounds returns a copy of the per-worker evaluation-round counts.
func (s *Stats) WorkerRounds() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.workerRounds...)
}

// WorkerIdle returns a copy of the per-worker idle times.
func (s *Stats) WorkerIdle() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.workerIdle...)
}

// TotalIdle returns the idle time summed over all workers.
func (s *Stats) TotalIdle() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total time.Duration
	for _, d := range s.workerIdle {
		total += d
	}
	return total
}

// FinishRun sets the mode label and the mode-neutral Rounds depth: the
// superstep count for BSP runs, the deepest per-worker round count for async
// runs. Engines call it once when a run completes.
func (s *Stats) FinishRun(mode string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Mode = mode
	if s.Supersteps > 0 {
		s.Rounds = s.Supersteps
		return
	}
	for _, r := range s.workerRounds {
		if int(r) > s.Rounds {
			s.Rounds = int(r)
		}
	}
}

// MBShipped returns the total communication volume in megabytes.
func (s *Stats) MBShipped() float64 { return float64(s.BytesSent) / (1024 * 1024) }

// String formats the stats as a one-line report.
func (s *Stats) String() string {
	mode := ""
	if s.Mode != "" && s.Mode != "bsp" {
		mode = "/" + s.Mode
	}
	rounds := fmt.Sprintf("%d supersteps", s.Supersteps)
	if s.Supersteps == 0 && s.Rounds > 0 {
		rounds = fmt.Sprintf("%d async rounds", s.Rounds)
	}
	pool := ""
	if s.Parallelism > 1 {
		pool = fmt.Sprintf(" p=%d", s.Parallelism)
	}
	return fmt.Sprintf("%s%s/%s n=%d%s: %v, %s, %d msgs, %.3f MB",
		s.Engine, mode, s.Query, s.Workers, pool, s.Elapsed.Round(time.Microsecond),
		rounds, s.MessagesSent, s.MBShipped())
}

// Timer measures elapsed wall-clock time for a run.
type Timer struct{ start time.Time }

// StartTimer returns a running timer.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Stop returns the elapsed duration since the timer started.
func (t Timer) Stop() time.Duration { return time.Since(t.start) }
