package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStatsAccounting(t *testing.T) {
	s := &Stats{Engine: "GRAPE", Query: "SSSP", Workers: 4}
	s.BeginSuperstep()
	s.AddMessage(100)
	s.AddMessage(50)
	s.BeginSuperstep()
	s.AddMessage(1024 * 1024)

	if s.Supersteps != 2 {
		t.Fatalf("Supersteps = %d, want 2", s.Supersteps)
	}
	if s.MessagesSent != 3 || s.BytesSent != 150+1024*1024 {
		t.Fatalf("totals wrong: %d msgs %d bytes", s.MessagesSent, s.BytesSent)
	}
	steps := s.PerStep()
	if len(steps) != 2 || steps[0].Messages != 2 || steps[0].Bytes != 150 || steps[1].Messages != 1 {
		t.Fatalf("per-step breakdown wrong: %+v", steps)
	}
	if mb := s.MBShipped(); mb < 1.0 || mb > 1.01 {
		t.Fatalf("MBShipped = %v", mb)
	}
	s.Elapsed = 1500 * time.Microsecond
	str := s.String()
	for _, want := range []string{"GRAPE/SSSP", "n=4", "2 supersteps", "3 msgs"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
}

func TestStatsConcurrentAddMessage(t *testing.T) {
	s := &Stats{}
	s.BeginSuperstep()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.AddMessage(10)
			}
		}()
	}
	wg.Wait()
	if s.MessagesSent != 1600 || s.BytesSent != 16000 {
		t.Fatalf("concurrent accounting lost updates: %d msgs %d bytes", s.MessagesSent, s.BytesSent)
	}
}

func TestAddMessageBeforeFirstSuperstep(t *testing.T) {
	s := &Stats{}
	s.AddMessage(7) // must not panic without a superstep
	if s.MessagesSent != 1 || len(s.PerStep()) != 0 {
		t.Fatalf("unexpected accounting: %+v", s)
	}
}

func TestTimer(t *testing.T) {
	timer := StartTimer()
	time.Sleep(2 * time.Millisecond)
	if d := timer.Stop(); d < time.Millisecond {
		t.Fatalf("timer measured %v", d)
	}
}
