package graphgen

import (
	"testing"
	"testing/quick"

	"grape/internal/graph"
)

func TestRoadNetworkShape(t *testing.T) {
	g := RoadNetwork(20, 20, Config{Seed: 1})
	if g.NumVertices() != 400 {
		t.Fatalf("|V| = %d, want 400", g.NumVertices())
	}
	if g.Directed() {
		t.Fatalf("road network must be undirected")
	}
	if avg := g.AverageDegree(); avg < 1.5 || avg > 4.5 {
		t.Fatalf("average degree = %v, want small road-like degree", avg)
	}
	// Large diameter is the defining property (roughly rows+cols).
	if d := g.EstimateDiameter(0); d < 20 {
		t.Fatalf("diameter = %d, want >= 20 for a 20x20 grid", d)
	}
}

func TestRoadNetworkDeterminism(t *testing.T) {
	a := RoadNetwork(10, 10, Config{Seed: 7})
	b := RoadNetwork(10, 10, Config{Seed: 7})
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	c := RoadNetwork(10, 10, Config{Seed: 8})
	if a.NumEdges() == c.NumEdges() {
		t.Logf("different seeds produced same edge count (possible but unusual)")
	}
}

func TestSocialNetworkShape(t *testing.T) {
	g := SocialNetwork(2000, 5, Config{Seed: 3, Labels: 100})
	if g.NumVertices() != 2000 {
		t.Fatalf("|V| = %d, want 2000", g.NumVertices())
	}
	if !g.Directed() {
		t.Fatalf("social network must be directed")
	}
	// Power-law-ish: the max in-degree should far exceed the average degree.
	maxIn := 0
	for i := 0; i < g.NumVertices(); i++ {
		if d := g.InDegree(i); d > maxIn {
			maxIn = d
		}
	}
	if maxIn < 20 {
		t.Fatalf("max in-degree = %d, want heavy-tailed hubs", maxIn)
	}
	// Small diameter.
	und := g.Undirect()
	if d := und.EstimateDiameter(0); d > 15 {
		t.Fatalf("diameter = %d, want small-world diameter", d)
	}
	// Labels drawn from the configured alphabet.
	labels := map[string]bool{}
	for i := 0; i < g.NumVertices(); i++ {
		labels[g.Label(i)] = true
	}
	if len(labels) < 10 {
		t.Fatalf("labels = %d distinct, want a rich alphabet", len(labels))
	}
}

func TestSocialNetworkEmpty(t *testing.T) {
	g := SocialNetwork(0, 5, Config{Seed: 1})
	if g.NumVertices() != 0 {
		t.Fatalf("empty social network should have no vertices")
	}
}

func TestKnowledgeBaseShape(t *testing.T) {
	g := KnowledgeBase(1000, 2, 160, Config{Seed: 5, Labels: 200})
	if g.NumVertices() != 1000 {
		t.Fatalf("|V| = %d, want 1000", g.NumVertices())
	}
	if g.NumEdges() != 2000 {
		t.Fatalf("|E| = %d, want 2000", g.NumEdges())
	}
	// No self loops.
	for _, e := range g.Edges() {
		if e.Src == e.Dst {
			t.Fatalf("self loop %v", e)
		}
	}
	small := KnowledgeBase(1, 3, 5, Config{Seed: 1})
	if small.NumEdges() != 0 {
		t.Fatalf("single-vertex KB should have no edges")
	}
}

func TestBipartiteShape(t *testing.T) {
	g := Bipartite(300, 50, 10, Config{Seed: 11})
	if g.NumVertices() != 350 {
		t.Fatalf("|V| = %d, want 350", g.NumVertices())
	}
	// All edges go user -> product with ratings 1..5.
	for _, e := range g.Edges() {
		if g.LabelOf(e.Src) != "user" || g.LabelOf(e.Dst) != "product" {
			t.Fatalf("edge %v does not go user->product", e)
		}
		if e.Weight < 1 || e.Weight > 5 {
			t.Fatalf("rating %v out of range", e.Weight)
		}
	}
	if g.NumEdges() < 300 {
		t.Fatalf("|E| = %d, want at least one rating per user on average", g.NumEdges())
	}
	empty := Bipartite(0, 10, 3, Config{Seed: 1})
	if empty.NumEdges() != 0 {
		t.Fatalf("bipartite graph with no users should have no edges")
	}
}

func TestUniformShape(t *testing.T) {
	g := Uniform(500, 2000, Config{Seed: 2})
	if g.NumVertices() != 500 {
		t.Fatalf("|V| = %d, want 500", g.NumVertices())
	}
	if g.NumEdges() != 2000 {
		t.Fatalf("|E| = %d, want 2000", g.NumEdges())
	}
	// Backbone ring keeps everything reachable: BFS from 0 over the
	// undirected view covers the whole graph.
	und := g.Undirect()
	if n := und.BFS(0, nil); n != 500 {
		t.Fatalf("uniform graph not connected: reached %d of 500", n)
	}
	tiny := Uniform(1, 10, Config{Seed: 2})
	if tiny.NumEdges() != 0 {
		t.Fatalf("1-vertex uniform graph should have no edges")
	}
}

func TestPatternConnectedAndLabeled(t *testing.T) {
	data := SocialNetwork(500, 4, Config{Seed: 9, Labels: 20})
	p := Pattern(data, 8, 15, 42)
	if p.NumVertices() != 8 {
		t.Fatalf("pattern |V| = %d, want 8", p.NumVertices())
	}
	if p.NumEdges() < 7 {
		t.Fatalf("pattern |E| = %d, want >= 7 (spanning tree)", p.NumEdges())
	}
	// Connected when viewed as undirected.
	und := p.Undirect()
	if n := und.BFS(0, nil); n != p.NumVertices() {
		t.Fatalf("pattern is disconnected: reached %d of %d", n, p.NumVertices())
	}
	// Labels come from the data graph alphabet.
	for i := 0; i < p.NumVertices(); i++ {
		if p.Label(i) == "" {
			t.Fatalf("pattern vertex %d has no label", i)
		}
	}
	if empty := Pattern(data, 0, 0, 1); empty.NumVertices() != 0 {
		t.Fatalf("empty pattern should have no vertices")
	}
}

// Property: generators are deterministic in their Config and never produce
// graphs whose edge endpoints are missing vertices.
func TestQuickGeneratorsWellFormed(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%40) + 10
		g1 := SocialNetwork(n, 3, Config{Seed: seed, Labels: 10})
		g2 := SocialNetwork(n, 3, Config{Seed: seed, Labels: 10})
		if g1.NumEdges() != g2.NumEdges() || g1.NumVertices() != g2.NumVertices() {
			return false
		}
		for _, e := range g1.Edges() {
			if !g1.HasVertex(e.Src) || !g1.HasVertex(e.Dst) {
				return false
			}
		}
		kb := KnowledgeBase(n, 2, 5, Config{Seed: seed, Labels: 8})
		for _, e := range kb.Edges() {
			if e.Src == e.Dst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternLabelsExistInData(t *testing.T) {
	data := KnowledgeBase(200, 3, 10, Config{Seed: 4, Labels: 15})
	p := Pattern(data, 6, 10, 17)
	dataLabels := map[string]bool{}
	for i := 0; i < data.NumVertices(); i++ {
		dataLabels[data.Label(i)] = true
	}
	for i := 0; i < p.NumVertices(); i++ {
		if !dataLabels[p.Label(i)] {
			t.Fatalf("pattern label %q not present in data graph", p.Label(i))
		}
	}
	_ = graph.VertexID(0)
}
