// Package graphgen generates the synthetic datasets that stand in for the
// real-life graphs used in the paper's evaluation (Section 7): the US road
// network "traffic", the "liveJournal" social network, the "DBpedia"
// knowledge base and the "movieLens" bipartite rating graph, plus the
// parameterized synthetic graphs of Appendix B (Exp-5).
//
// Every generator is deterministic for a given Config seed, so benchmark
// results are reproducible run to run. Generated sizes are scaled down from
// the paper (laptop-scale), but the structural properties that drive the
// paper's results are preserved:
//
//   - RoadNetwork: planar grid with small average degree and a very large
//     diameter — the property that makes vertex-centric SSSP take thousands
//     of supersteps while GRAPE takes tens (Table 1, Fig 6a).
//   - SocialNetwork: preferential-attachment power-law graph with a small
//     diameter and a configurable label alphabet (liveJournal surrogate).
//   - KnowledgeBase: sparse multi-type labeled graph (DBpedia surrogate).
//   - Bipartite: user–product rating graph (movieLens surrogate) for CF.
//   - Uniform: the Appendix-B synthetic graphs with |V|,|E| and a 50-label
//     alphabet.
package graphgen

import (
	"fmt"
	"math/rand"

	"grape/internal/graph"
)

// Config controls a generator run.
type Config struct {
	// Seed makes generation deterministic. Two runs with equal Config
	// produce identical graphs.
	Seed int64
	// Labels is the size of the label alphabet for labeled generators.
	// Labels <= 0 means unlabeled.
	Labels int
}

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

func (c Config) label(rng *rand.Rand) string {
	if c.Labels <= 0 {
		return ""
	}
	return fmt.Sprintf("L%d", rng.Intn(c.Labels))
}

// RoadNetwork generates a rows x cols grid road network. Vertices are grid
// intersections; edges connect horizontal and vertical neighbours with
// weights in [1, 10) representing road segment lengths. A small fraction of
// edges is removed to create irregularity without disconnecting the grid
// badly. The graph is undirected, unlabeled and has diameter ~ rows+cols.
func RoadNetwork(rows, cols int, cfg Config) *graph.Graph {
	rng := cfg.rng()
	b := graph.NewBuilder(false)
	id := func(r, c int) graph.VertexID { return graph.VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddVertex(id(r, c), "")
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				// Drop ~5% of horizontal segments, but never the first row so
				// the graph stays connected.
				if r == 0 || rng.Float64() >= 0.05 {
					b.AddEdge(id(r, c), id(r, c+1), 1+9*rng.Float64(), "")
				}
			}
			if r+1 < rows {
				if c == 0 || rng.Float64() >= 0.05 {
					b.AddEdge(id(r, c), id(r+1, c), 1+9*rng.Float64(), "")
				}
			}
		}
	}
	return b.Build()
}

// SocialNetwork generates a directed preferential-attachment graph with n
// vertices and roughly n*outDegree edges, plus vertex labels drawn from the
// configured alphabet. Degree distribution is heavy-tailed (a few hub
// vertices collect a large share of in-edges), diameter is small — the shape
// of the liveJournal graph used in the paper.
func SocialNetwork(n, outDegree int, cfg Config) *graph.Graph {
	if n <= 0 {
		return graph.NewBuilder(true).Build()
	}
	rng := cfg.rng()
	b := graph.NewBuilder(true)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.VertexID(i), cfg.label(rng))
	}
	// Preferential attachment by sampling from a growing list of edge
	// endpoints (each endpoint appears once per incident edge).
	targets := make([]int, 0, n*outDegree)
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		deg := outDegree
		if deg > v {
			deg = v
		}
		chosen := make(map[int]bool, deg)
		for len(chosen) < deg {
			var t int
			if rng.Float64() < 0.7 {
				t = targets[rng.Intn(len(targets))]
			} else {
				t = rng.Intn(v)
			}
			if t == v || chosen[t] {
				continue
			}
			chosen[t] = true
			b.AddEdge(graph.VertexID(v), graph.VertexID(t), 1+9*rng.Float64(), "")
			targets = append(targets, t, v)
		}
	}
	return b.Build()
}

// KnowledgeBase generates a sparse directed labeled graph resembling a
// knowledge base: many vertex types (labels), low average degree, and edges
// carrying relation labels. n is the number of entities, avgDegree the mean
// out-degree, relations the number of distinct edge labels.
func KnowledgeBase(n, avgDegree, relations int, cfg Config) *graph.Graph {
	rng := cfg.rng()
	b := graph.NewBuilder(true)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.VertexID(i), cfg.label(rng))
	}
	if n < 2 {
		return b.Build()
	}
	edges := n * avgDegree
	for i := 0; i < edges; i++ {
		src := rng.Intn(n)
		// Knowledge bases cluster: 60% of edges stay within a window of
		// nearby entity IDs, the rest are global.
		var dst int
		if rng.Float64() < 0.6 {
			window := n / 50
			if window < 4 {
				window = 4
			}
			dst = (src + 1 + rng.Intn(window)) % n
		} else {
			dst = rng.Intn(n)
		}
		if dst == src {
			dst = (dst + 1) % n
		}
		rel := ""
		if relations > 0 {
			rel = fmt.Sprintf("r%d", rng.Intn(relations))
		}
		b.AddEdge(graph.VertexID(src), graph.VertexID(dst), 1, rel)
	}
	return b.Build()
}

// Bipartite generates a user–product rating graph for collaborative
// filtering: users u_0..u_{users-1} and products p_0..p_{products-1}
// (product IDs start at the user count), with ratings edges drawn so that
// popular products receive more ratings. Edge weights are ratings in
// {1,...,5}. Ratings per user follows a geometric-ish distribution with the
// given mean.
func Bipartite(users, products, ratingsPerUser int, cfg Config) *graph.Graph {
	rng := cfg.rng()
	b := graph.NewBuilder(true)
	for u := 0; u < users; u++ {
		b.AddVertex(graph.VertexID(u), "user")
	}
	for p := 0; p < products; p++ {
		b.AddVertex(graph.VertexID(users+p), "product")
	}
	if users == 0 || products == 0 {
		return b.Build()
	}
	for u := 0; u < users; u++ {
		k := 1 + rng.Intn(2*ratingsPerUser)
		seen := make(map[int]bool, k)
		for j := 0; j < k; j++ {
			// Zipf-ish product popularity: square the uniform draw.
			f := rng.Float64()
			p := int(f * f * float64(products))
			if p >= products {
				p = products - 1
			}
			if seen[p] {
				continue
			}
			seen[p] = true
			rating := float64(1 + rng.Intn(5))
			b.AddEdge(graph.VertexID(u), graph.VertexID(users+p), rating, "rated")
		}
	}
	return b.Build()
}

// Uniform generates the Appendix-B synthetic graphs: a directed graph with
// numVertices vertices and numEdges edges whose labels are drawn from a
// 50-symbol alphabet (override with cfg.Labels), with endpoints chosen to mix
// local and global edges so connected components are large.
func Uniform(numVertices, numEdges int, cfg Config) *graph.Graph {
	if cfg.Labels == 0 {
		cfg.Labels = 50
	}
	rng := cfg.rng()
	b := graph.NewBuilder(true)
	for i := 0; i < numVertices; i++ {
		b.AddVertex(graph.VertexID(i), cfg.label(rng))
	}
	if numVertices < 2 {
		return b.Build()
	}
	// A backbone ring keeps most of the graph in one large component, like
	// the paper's synthetic graphs.
	for i := 0; i < numVertices; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%numVertices), 1+9*rng.Float64(), "")
	}
	for i := numVertices; i < numEdges; i++ {
		src := rng.Intn(numVertices)
		dst := rng.Intn(numVertices)
		if src == dst {
			dst = (dst + 1) % numVertices
		}
		b.AddEdge(graph.VertexID(src), graph.VertexID(dst), 1+9*rng.Float64(), "")
	}
	return b.Build()
}

// Pattern generates a random connected labeled pattern graph with the given
// number of query nodes and edges, whose labels are sampled from the data
// graph g so that the pattern actually has candidate matches (Section 7:
// "using labels drawn from the graphs"). The pattern is returned as a
// directed graph.
func Pattern(g *graph.Graph, nodes, edges int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(true)
	if nodes <= 0 {
		return b.Build()
	}
	n := g.NumVertices()
	labelOf := func() string {
		if n == 0 {
			return "L0"
		}
		return g.Label(rng.Intn(n))
	}
	for i := 0; i < nodes; i++ {
		b.AddVertex(graph.VertexID(i), labelOf())
	}
	// Spanning tree first so the pattern is connected, then extra edges.
	for i := 1; i < nodes; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(i)), graph.VertexID(i), 1, "")
	}
	for i := nodes - 1; i < edges; i++ {
		s := rng.Intn(nodes)
		d := rng.Intn(nodes)
		if s == d {
			continue
		}
		b.AddEdge(graph.VertexID(s), graph.VertexID(d), 1, "")
	}
	return b.Build()
}
