package graphgen

import (
	"bytes"
	"testing"

	"grape/internal/graph"
)

// serialize renders a graph in the canonical text format; byte equality of
// two serializations implies identical vertex order, labels, adjacency and
// weights.
func serialize(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGeneratorsByteIdentical pins the determinism contract the update
// streams rely on: the same seed and scale must produce byte-identical
// graphs, run to run and call to call.
func TestGeneratorsByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		gen  func() *graph.Graph
	}{
		{"road", func() *graph.Graph { return RoadNetwork(12, 12, Config{Seed: 1001}) }},
		{"social", func() *graph.Graph { return SocialNetwork(300, 6, Config{Seed: 1002, Labels: 100}) }},
		{"knowledge", func() *graph.Graph { return KnowledgeBase(300, 3, 160, Config{Seed: 1003, Labels: 200}) }},
		{"bipartite", func() *graph.Graph { return Bipartite(100, 20, 12, Config{Seed: 1004}) }},
		{"uniform", func() *graph.Graph { return Uniform(200, 800, Config{Seed: 1100}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := serialize(t, tc.gen())
			b := serialize(t, tc.gen())
			if !bytes.Equal(a, b) {
				t.Fatalf("generator %s is not deterministic: %d vs %d bytes", tc.name, len(a), len(b))
			}
			if len(a) == 0 {
				t.Fatalf("generator %s produced an empty graph", tc.name)
			}
		})
	}
	// Different seeds must actually change the output (guards against a
	// generator ignoring its seed, which would make the test above
	// vacuously pass).
	a := serialize(t, SocialNetwork(300, 6, Config{Seed: 1, Labels: 10}))
	b := serialize(t, SocialNetwork(300, 6, Config{Seed: 2, Labels: 10}))
	if bytes.Equal(a, b) {
		t.Fatalf("seed is ignored by SocialNetwork")
	}
}

// TestPatternDeterministic covers the pattern generator used by Sim/SubIso
// workloads.
func TestPatternDeterministic(t *testing.T) {
	g := SocialNetwork(200, 5, Config{Seed: 9, Labels: 8})
	a := serialize(t, Pattern(g, 6, 10, 42))
	b := serialize(t, Pattern(g, 6, 10, 42))
	if !bytes.Equal(a, b) {
		t.Fatalf("Pattern is not deterministic")
	}
}
