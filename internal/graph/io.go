package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text serialization of graphs. The format is a line-oriented edge list with
// optional vertex-label lines, matching the shape of the SNAP / DIMACS edge
// lists the paper's datasets are distributed in:
//
//	# comment
//	graph directed|undirected
//	v <id> <label>
//	e <src> <dst> <weight> [<label>]
//
// Lines starting with '#' and blank lines are ignored. The "graph" header is
// optional and defaults to directed.

// WriteTo serializes the graph in the text format described in the package
// documentation. It returns the number of bytes written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	if err := count(fmt.Fprintf(bw, "graph %s\n", kind)); err != nil {
		return n, err
	}
	for i := 0; i < g.NumVertices(); i++ {
		if err := count(fmt.Fprintf(bw, "v %d %s\n", g.ids[i], g.labels[i])); err != nil {
			return n, err
		}
	}
	for _, e := range g.Edges() {
		if err := count(fmt.Fprintf(bw, "e %d %d %g %s\n", e.Src, e.Dst, e.Weight, e.Label)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a graph from the text format produced by WriteTo (also
// accepting plain "src dst [weight]" edge lines for interoperability with
// SNAP-style edge lists).
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var b *Builder
	directed := true
	line := 0
	ensure := func() *Builder {
		if b == nil {
			b = NewBuilder(directed)
		}
		return b
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "graph":
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: missing direction", line)
			}
			switch fields[1] {
			case "directed":
				directed = true
			case "undirected":
				directed = false
			default:
				return nil, fmt.Errorf("graph: line %d: unknown direction %q", line, fields[1])
			}
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: header after data", line)
			}
		case "v":
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: malformed vertex", line)
			}
			id, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			label := ""
			if len(fields) > 2 {
				label = fields[2]
			}
			ensure().AddVertex(VertexID(id), label)
		case "e":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: malformed edge", line)
			}
			if err := parseEdge(ensure(), fields[1:], line); err != nil {
				return nil, err
			}
		default:
			// Plain "src dst [weight]" edge line.
			if err := parseEdge(ensure(), fields, line); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		b = NewBuilder(directed)
	}
	return b.Build(), nil
}

func parseEdge(b *Builder, fields []string, line int) error {
	src, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return fmt.Errorf("graph: line %d: bad source: %v", line, err)
	}
	dst, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return fmt.Errorf("graph: line %d: bad destination: %v", line, err)
	}
	weight := 1.0
	if len(fields) > 2 {
		weight, err = strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return fmt.Errorf("graph: line %d: bad weight: %v", line, err)
		}
	}
	label := ""
	if len(fields) > 3 {
		label = fields[3]
	}
	b.AddEdge(VertexID(src), VertexID(dst), weight, label)
	return nil
}
