package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func buildDiamond(t *testing.T, directed bool) *Graph {
	t.Helper()
	b := NewBuilder(directed)
	b.AddVertex(1, "a")
	b.AddVertex(2, "b")
	b.AddVertex(3, "b")
	b.AddVertex(4, "c")
	b.AddEdge(1, 2, 1.0, "x")
	b.AddEdge(1, 3, 2.0, "x")
	b.AddEdge(2, 4, 3.0, "y")
	b.AddEdge(3, 4, 4.0, "y")
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := buildDiamond(t, true)
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if !g.Directed() {
		t.Fatalf("Directed = false, want true")
	}
	if g.LabelOf(1) != "a" || g.LabelOf(4) != "c" {
		t.Fatalf("labels wrong: %q %q", g.LabelOf(1), g.LabelOf(4))
	}
	if g.IndexOf(99) != -1 {
		t.Fatalf("IndexOf(99) = %d, want -1", g.IndexOf(99))
	}
	if g.LabelOf(99) != "" {
		t.Fatalf("LabelOf(99) = %q, want empty", g.LabelOf(99))
	}
}

func TestAddVertexIdempotent(t *testing.T) {
	b := NewBuilder(true)
	i1 := b.AddVertex(7, "first")
	i2 := b.AddVertex(7, "second")
	if i1 != i2 {
		t.Fatalf("re-adding vertex changed index: %d vs %d", i1, i2)
	}
	g := b.Build()
	if g.NumVertices() != 1 {
		t.Fatalf("NumVertices = %d, want 1", g.NumVertices())
	}
	if g.LabelOf(7) != "second" {
		t.Fatalf("label = %q, want updated label", g.LabelOf(7))
	}
}

func TestAddEdgeImplicitVertices(t *testing.T) {
	b := NewBuilder(true)
	b.AddEdge(10, 20, 1, "")
	g := b.Build()
	if !g.HasVertex(10) || !g.HasVertex(20) {
		t.Fatalf("implicit vertices missing")
	}
	if !g.HasEdge(10, 20) {
		t.Fatalf("edge 10->20 missing")
	}
	if g.HasEdge(20, 10) {
		t.Fatalf("directed graph should not have reverse edge")
	}
}

func TestDirectedAdjacency(t *testing.T) {
	g := buildDiamond(t, true)
	i1 := g.IndexOf(1)
	if d := g.OutDegree(i1); d != 2 {
		t.Fatalf("OutDegree(1) = %d, want 2", d)
	}
	if d := g.InDegree(i1); d != 0 {
		t.Fatalf("InDegree(1) = %d, want 0", d)
	}
	i4 := g.IndexOf(4)
	if d := g.InDegree(i4); d != 2 {
		t.Fatalf("InDegree(4) = %d, want 2", d)
	}
	if w, ok := g.EdgeWeight(2, 4); !ok || w != 3.0 {
		t.Fatalf("EdgeWeight(2,4) = %v,%v want 3,true", w, ok)
	}
	if _, ok := g.EdgeWeight(4, 2); ok {
		t.Fatalf("EdgeWeight(4,2) should not exist")
	}
}

func TestUndirectedAdjacency(t *testing.T) {
	g := buildDiamond(t, false)
	i4 := g.IndexOf(4)
	if d := g.OutDegree(i4); d != 2 {
		t.Fatalf("OutDegree(4) = %d, want 2 in undirected graph", d)
	}
	if !g.HasEdge(4, 2) {
		t.Fatalf("undirected graph must surface reverse edge")
	}
	if len(g.Edges()) != 4 {
		t.Fatalf("Edges() = %d entries, want 4 (each undirected edge once)", len(g.Edges()))
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := buildDiamond(t, true)
	got := g.Edges()
	want := []Edge{
		{1, 2, 1.0, "x"},
		{1, 3, 2.0, "x"},
		{2, 4, 3.0, "y"},
		{3, 4, 4.0, "y"},
	}
	sort.Slice(got, func(i, j int) bool {
		if got[i].Src != got[j].Src {
			return got[i].Src < got[j].Src
		}
		return got[i].Dst < got[j].Dst
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges() = %+v, want %+v", got, want)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildDiamond(t, true)
	sub := g.InducedSubgraph([]VertexID{1, 2, 4, 999})
	if sub.NumVertices() != 3 {
		t.Fatalf("induced |V| = %d, want 3", sub.NumVertices())
	}
	if sub.NumEdges() != 2 {
		t.Fatalf("induced |E| = %d, want 2 (1->2, 2->4)", sub.NumEdges())
	}
	if !sub.HasEdge(1, 2) || !sub.HasEdge(2, 4) {
		t.Fatalf("induced subgraph missing expected edges")
	}
	if sub.HasEdge(1, 3) || sub.HasVertex(3) {
		t.Fatalf("induced subgraph contains excluded vertex")
	}
	if sub.LabelOf(2) != "b" {
		t.Fatalf("induced subgraph lost label")
	}
}

func TestNeighborhood(t *testing.T) {
	g := buildDiamond(t, true)
	n0 := g.Neighborhood(1, 0)
	if len(n0) != 1 || n0[0] != 1 {
		t.Fatalf("0-hop neighbourhood = %v, want [1]", n0)
	}
	n1 := g.Neighborhood(1, 1)
	if len(n1) != 3 {
		t.Fatalf("1-hop neighbourhood = %v, want 3 vertices", n1)
	}
	n2 := g.Neighborhood(1, 2)
	if len(n2) != 4 {
		t.Fatalf("2-hop neighbourhood = %v, want all 4 vertices", n2)
	}
	// Directed neighbourhood also walks in-edges, so from vertex 4 we can
	// still reach the whole diamond within 2 hops.
	n4 := g.Neighborhood(4, 2)
	if len(n4) != 4 {
		t.Fatalf("neighbourhood from sink = %v, want all 4 vertices", n4)
	}
	if g.Neighborhood(12345, 1) != nil {
		t.Fatalf("neighbourhood of unknown vertex should be nil")
	}
}

func TestBFSAndDFS(t *testing.T) {
	g := buildDiamond(t, true)
	depths := map[int]int{}
	n := g.BFS(g.IndexOf(1), func(v, d int) bool {
		depths[v] = d
		return true
	})
	if n != 4 {
		t.Fatalf("BFS visited %d, want 4", n)
	}
	if depths[g.IndexOf(4)] != 2 {
		t.Fatalf("BFS depth of sink = %d, want 2", depths[g.IndexOf(4)])
	}
	var order []int
	n = g.DFS(g.IndexOf(1), func(v int) bool {
		order = append(order, v)
		return true
	})
	if n != 4 || len(order) != 4 {
		t.Fatalf("DFS visited %d (%v), want 4", n, order)
	}
	// Early termination.
	n = g.BFS(g.IndexOf(1), func(v, d int) bool { return false })
	if n != 1 {
		t.Fatalf("BFS with early stop visited %d, want 1", n)
	}
	if g.BFS(-1, nil) != 0 || g.DFS(100, nil) != 0 {
		t.Fatalf("traversal from invalid start should visit nothing")
	}
}

func TestUndirect(t *testing.T) {
	g := buildDiamond(t, true)
	u := g.Undirect()
	if u.Directed() {
		t.Fatalf("Undirect returned a directed graph")
	}
	if !u.HasEdge(4, 2) {
		t.Fatalf("undirected view missing reverse edge")
	}
	if u2 := u.Undirect(); u2 != u {
		t.Fatalf("Undirect of undirected graph should return receiver")
	}
}

func TestEstimateDiameter(t *testing.T) {
	// Path of 6 vertices: diameter 5.
	b := NewBuilder(false)
	for i := 0; i < 5; i++ {
		b.AddEdge(VertexID(i), VertexID(i+1), 1, "")
	}
	g := b.Build()
	if d := g.EstimateDiameter(0); d != 5 {
		t.Fatalf("EstimateDiameter = %d, want 5", d)
	}
	if d := g.EstimateDiameter(-7); d != 5 {
		t.Fatalf("EstimateDiameter with bad seed = %d, want 5", d)
	}
	empty := NewBuilder(false).Build()
	if d := empty.EstimateDiameter(0); d != 0 {
		t.Fatalf("EstimateDiameter(empty) = %d, want 0", d)
	}
}

func TestDegreeStats(t *testing.T) {
	g := buildDiamond(t, true)
	h := g.DegreeHistogram()
	if h[2] != 1 || h[1] != 2 || h[0] != 1 {
		t.Fatalf("DegreeHistogram = %v", h)
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	if avg := g.AverageDegree(); avg != 1.0 {
		t.Fatalf("AverageDegree = %v, want 1.0", avg)
	}
	empty := NewBuilder(true).Build()
	if empty.AverageDegree() != 0 {
		t.Fatalf("AverageDegree(empty) != 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildDiamond(t, true)
	c := g.Clone()
	if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("clone size mismatch")
	}
	if !c.HasEdge(1, 2) || c.LabelOf(1) != "a" {
		t.Fatalf("clone lost data")
	}
}

func TestStringer(t *testing.T) {
	g := buildDiamond(t, true)
	if got := g.String(); got != "graph{directed |V|=4 |E|=4}" {
		t.Fatalf("String() = %q", got)
	}
	u := buildDiamond(t, false)
	if got := u.String(); got != "graph{undirected |V|=4 |E|=4}" {
		t.Fatalf("String() = %q", got)
	}
}

func TestIOTextRoundTrip(t *testing.T) {
	g := buildDiamond(t, true)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %v vs %v", back, g)
	}
	for _, e := range g.Edges() {
		if w, ok := back.EdgeWeight(e.Src, e.Dst); !ok || w != e.Weight {
			t.Fatalf("round trip lost edge %+v", e)
		}
	}
	if back.LabelOf(1) != "a" {
		t.Fatalf("round trip lost vertex label")
	}
}

func TestReadPlainEdgeList(t *testing.T) {
	src := "# snap style\n1 2\n2 3 4.5\n"
	g, err := Read(bytes.NewBufferString(src))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %v, want 3 vertices 2 edges", g)
	}
	if w, _ := g.EdgeWeight(2, 3); w != 4.5 {
		t.Fatalf("weight = %v, want 4.5", w)
	}
	if w, _ := g.EdgeWeight(1, 2); w != 1.0 {
		t.Fatalf("default weight = %v, want 1.0", w)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"graph sideways\n",
		"graph\n",
		"v abc lbl\n",
		"e 1\n",
		"e x 2\n",
		"e 1 y\n",
		"e 1 2 zz\n",
		"1 2 3 l\ngraph directed\n",
	}
	for _, src := range cases {
		if _, err := Read(bytes.NewBufferString(src)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", src)
		}
	}
	g, err := Read(bytes.NewBufferString("# only comments\n\n"))
	if err != nil || g.NumVertices() != 0 {
		t.Fatalf("empty input should yield empty graph, got %v, %v", g, err)
	}
}

// Property: for any random directed graph, every edge reported by Edges() is
// reachable through the adjacency structure and vice versa, and the in/out
// degree sums both equal the number of stored adjacency entries.
func TestQuickAdjacencyConsistency(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint8) bool {
		n := int(nRaw%20) + 2
		m := int(mRaw % 60)
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(true)
		for i := 0; i < n; i++ {
			b.AddVertex(VertexID(i), "")
		}
		type pair struct{ s, d VertexID }
		want := make(map[pair]int)
		for i := 0; i < m; i++ {
			s := VertexID(rng.Intn(n))
			d := VertexID(rng.Intn(n))
			b.AddEdge(s, d, 1, "")
			want[pair{s, d}]++
		}
		g := b.Build()
		got := make(map[pair]int)
		outSum, inSum := 0, 0
		for i := 0; i < g.NumVertices(); i++ {
			outSum += g.OutDegree(i)
			inSum += g.InDegree(i)
			for _, he := range g.OutEdges(i) {
				got[pair{g.VertexAt(i), g.VertexAt(int(he.To))}]++
			}
		}
		if outSum != m || inSum != m {
			return false
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: text round trip preserves vertex and edge counts for random
// graphs.
func TestQuickIORoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%15) + 2
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(rng.Intn(2) == 0)
		for i := 0; i < n; i++ {
			b.AddVertex(VertexID(i), "l")
		}
		for i := 0; i < 2*n; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)), float64(rng.Intn(9)+1), "w")
		}
		g := b.Build()
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return back.NumVertices() == g.NumVertices() && back.NumEdges() == g.NumEdges() &&
			back.Directed() == g.Directed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
