package graph

import (
	"math"
	"testing"
)

func edgeSet(t *testing.T, g *Graph) map[Edge]int {
	t.Helper()
	set := make(map[Edge]int)
	for _, e := range g.Edges() {
		if !g.Directed() && e.Dst < e.Src {
			e.Src, e.Dst = e.Dst, e.Src
		}
		set[e]++
	}
	return set
}

func wantGraphEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.Directed() != want.Directed() {
		t.Fatalf("directedness: got %v want %v", got.Directed(), want.Directed())
	}
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("|V|: got %d want %d", got.NumVertices(), want.NumVertices())
	}
	for i := 0; i < want.NumVertices(); i++ {
		id := want.VertexAt(i)
		if !got.HasVertex(id) {
			t.Fatalf("missing vertex %d", id)
		}
		if got.LabelOf(id) != want.Label(i) {
			t.Fatalf("label of %d: got %q want %q", id, got.LabelOf(id), want.Label(i))
		}
	}
	gs, ws := edgeSet(t, got), edgeSet(t, want)
	if len(gs) != len(ws) {
		t.Fatalf("edge sets differ: got %d distinct want %d", len(gs), len(ws))
	}
	for e, n := range ws {
		if gs[e] != n {
			t.Fatalf("edge %+v: got count %d want %d", e, gs[e], n)
		}
	}
}

func TestApplyUpdatesInsertAndRemove(t *testing.T) {
	b := NewBuilder(true)
	b.AddVertex(1, "a")
	b.AddVertex(2, "b")
	b.AddEdge(1, 2, 1.0, "")
	g := b.Build()

	g2 := ApplyUpdates(g, []Update{
		AddVertexUpdate(3, "c"),
		AddEdgeUpdate(2, 3, 2.0, "x"),
		AddEdgeUpdate(3, 1, 0.5, ""),
	})
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("original mutated: %v", g)
	}
	wb := NewBuilder(true)
	wb.AddVertex(1, "a")
	wb.AddVertex(2, "b")
	wb.AddVertex(3, "c")
	wb.AddEdge(1, 2, 1.0, "")
	wb.AddEdge(2, 3, 2.0, "x")
	wb.AddEdge(3, 1, 0.5, "")
	wantGraphEqual(t, g2, wb.Build())

	g3 := ApplyUpdates(g2, []Update{
		RemoveEdgeUpdate(2, 3),
		RemoveVertexUpdate(1), // removes 1->2 and 3->1
	})
	wb3 := NewBuilder(true)
	wb3.AddVertex(2, "b")
	wb3.AddVertex(3, "c")
	wantGraphEqual(t, g3, wb3.Build())
}

func TestApplyUpdatesReweightAndNoOps(t *testing.T) {
	b := NewBuilder(false)
	b.AddEdge(1, 2, 1.0, "")
	b.AddEdge(2, 3, 5.0, "")
	g := b.Build()

	g2 := ApplyUpdates(g, []Update{
		ReweightEdgeUpdate(3, 2, 1.5), // reversed endpoints: undirected match
		RemoveEdgeUpdate(7, 8),        // missing edge: no-op
		RemoveVertexUpdate(99),        // missing vertex: no-op
		ReweightEdgeUpdate(5, 6, 2.0), // missing edge: no-op
	})
	if w, ok := g2.EdgeWeight(2, 3); !ok || w != 1.5 {
		t.Fatalf("reweight: got %v,%v want 1.5,true", w, ok)
	}
	if g2.NumVertices() != 3 || g2.NumEdges() != 2 {
		t.Fatalf("no-op ops changed the graph: %v", g2)
	}
}

func TestApplyUpdatesImplicitEndpointsAndIsolated(t *testing.T) {
	g := NewBuilder(true).Build()
	g2 := ApplyUpdates(g, []Update{
		AddEdgeUpdate(10, 20, 1, ""),
		AddVertexUpdate(30, "iso"),
	})
	if !g2.HasVertex(10) || !g2.HasVertex(20) || !g2.HasVertex(30) {
		t.Fatalf("missing vertices in %v", g2)
	}
	if g2.LabelOf(30) != "iso" {
		t.Fatalf("isolated vertex label lost")
	}
	// Removing the edge keeps the implicit endpoints.
	g3 := ApplyUpdates(g2, []Update{RemoveEdgeUpdate(10, 20)})
	if g3.NumVertices() != 3 || g3.NumEdges() != 0 {
		t.Fatalf("remove edge: %v", g3)
	}
}

func TestApplyUpdatesBatchOrder(t *testing.T) {
	g := NewBuilder(true).Build()
	// Add then remove within one batch: net effect is absence.
	g2 := ApplyUpdates(g, []Update{
		AddEdgeUpdate(1, 2, 1, ""),
		RemoveEdgeUpdate(1, 2),
		AddVertexUpdate(5, ""),
		RemoveVertexUpdate(5),
	})
	if g2.NumEdges() != 0 {
		t.Fatalf("edge survived add+remove: %v", g2)
	}
	if g2.HasVertex(5) {
		t.Fatalf("vertex survived add+remove")
	}
	if !g2.HasVertex(1) || !g2.HasVertex(2) {
		t.Fatalf("implicit endpoints of removed edge should remain")
	}
}

func TestApplyUpdatesWeightsInfinity(t *testing.T) {
	b := NewBuilder(true)
	b.AddEdge(1, 2, 3, "")
	g := b.Build()
	g2 := ApplyUpdates(g, []Update{ReweightEdgeUpdate(1, 2, math.Inf(1))})
	if w, _ := g2.EdgeWeight(1, 2); !math.IsInf(w, 1) {
		t.Fatalf("infinite weight not preserved: %v", w)
	}
}
