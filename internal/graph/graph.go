// Package graph provides the graph data model used throughout the GRAPE
// reproduction: directed or undirected graphs G = (V, E, L) whose nodes and
// edges carry labels, and whose edges carry weights (Section 2 of the paper).
//
// Graphs are constructed through a Builder and are immutable afterwards,
// which lets fragments, engines and baselines share them across goroutines
// without locking. Internally vertices are stored densely (index 0..n-1) with
// a mapping to the caller's external vertex identifiers, and adjacency is
// kept in compressed sparse rows so that traversals touch contiguous memory.
package graph

import (
	"fmt"
	"sort"
)

// VertexID is the caller-visible identifier of a vertex. External identifiers
// are arbitrary non-negative integers; they need not be dense.
type VertexID int64

// NoVertex is returned by lookups that fail to find a vertex.
const NoVertex = VertexID(-1)

// Edge is a fully resolved edge, used at API boundaries (construction, I/O,
// pattern definitions). Inside the Graph edges are stored in CSR form.
type Edge struct {
	Src    VertexID
	Dst    VertexID
	Weight float64
	Label  string
}

// Vertex is a fully resolved vertex, used at API boundaries.
type Vertex struct {
	ID    VertexID
	Label string
}

// HalfEdge is an adjacency entry: the dense index of the neighbour plus the
// edge weight and label. It is the unit returned by OutEdges/InEdges.
type HalfEdge struct {
	To     int32
	Weight float64
	Label  string
}

// Graph is an immutable directed or undirected labeled graph.
//
// Vertices are addressed either by external VertexID or by dense index
// (0..NumVertices-1). Algorithms that iterate the whole graph should use the
// dense index; the external ID is recovered with VertexAt.
type Graph struct {
	directed bool

	ids    []VertexID         // dense index -> external id
	index  map[VertexID]int32 // external id -> dense index
	labels []string           // dense index -> vertex label

	// CSR adjacency. outAdj[outOff[i]:outOff[i+1]] are the out-edges of i.
	outOff []int32
	outAdj []HalfEdge
	inOff  []int32
	inAdj  []HalfEdge

	numEdges int
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.ids) }

// NumEdges returns |E| as the number of edges passed to the builder (each
// undirected edge counts once).
func (g *Graph) NumEdges() int { return g.numEdges }

// VertexAt returns the external ID of the vertex at dense index i.
func (g *Graph) VertexAt(i int) VertexID { return g.ids[i] }

// IndexOf returns the dense index of the vertex with external ID id, or -1 if
// the vertex is not present.
func (g *Graph) IndexOf(id VertexID) int {
	if i, ok := g.index[id]; ok {
		return int(i)
	}
	return -1
}

// HasVertex reports whether the vertex with the given external ID exists.
func (g *Graph) HasVertex(id VertexID) bool { _, ok := g.index[id]; return ok }

// Label returns the label of the vertex at dense index i.
func (g *Graph) Label(i int) string { return g.labels[i] }

// LabelOf returns the label of the vertex with external ID id. It returns the
// empty string when the vertex does not exist.
func (g *Graph) LabelOf(id VertexID) string {
	if i := g.IndexOf(id); i >= 0 {
		return g.labels[i]
	}
	return ""
}

// OutDegree returns the out-degree of the vertex at dense index i. For
// undirected graphs this is the full degree.
func (g *Graph) OutDegree(i int) int { return int(g.outOff[i+1] - g.outOff[i]) }

// InDegree returns the in-degree of the vertex at dense index i. For
// undirected graphs InDegree equals OutDegree.
func (g *Graph) InDegree(i int) int { return int(g.inOff[i+1] - g.inOff[i]) }

// OutEdges returns the out-adjacency of the vertex at dense index i. The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) OutEdges(i int) []HalfEdge { return g.outAdj[g.outOff[i]:g.outOff[i+1]] }

// InEdges returns the in-adjacency of the vertex at dense index i. The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) InEdges(i int) []HalfEdge { return g.inAdj[g.inOff[i]:g.inOff[i+1]] }

// Vertices returns all vertices with their labels, in dense-index order.
func (g *Graph) Vertices() []Vertex {
	vs := make([]Vertex, len(g.ids))
	for i, id := range g.ids {
		vs[i] = Vertex{ID: id, Label: g.labels[i]}
	}
	return vs
}

// Edges materializes all edges with external IDs. Each undirected edge is
// reported once, with Src <= Dst by dense index order of insertion direction.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.numEdges)
	for i := 0; i < g.NumVertices(); i++ {
		for _, he := range g.OutEdges(i) {
			if !g.directed && int(he.To) < i {
				continue // report each undirected edge once
			}
			es = append(es, Edge{
				Src:    g.ids[i],
				Dst:    g.ids[he.To],
				Weight: he.Weight,
				Label:  he.Label,
			})
		}
	}
	return es
}

// HasEdge reports whether an edge from src to dst exists (in either direction
// for undirected graphs).
func (g *Graph) HasEdge(src, dst VertexID) bool {
	si, di := g.IndexOf(src), g.IndexOf(dst)
	if si < 0 || di < 0 {
		return false
	}
	for _, he := range g.OutEdges(si) {
		if int(he.To) == di {
			return true
		}
	}
	return false
}

// EdgeWeight returns the weight of the first edge found from src to dst and
// whether such an edge exists.
func (g *Graph) EdgeWeight(src, dst VertexID) (float64, bool) {
	si, di := g.IndexOf(src), g.IndexOf(dst)
	if si < 0 || di < 0 {
		return 0, false
	}
	for _, he := range g.OutEdges(si) {
		if int(he.To) == di {
			return he.Weight, true
		}
	}
	return 0, false
}

// InducedSubgraph returns the subgraph of g induced by the given set of
// external vertex IDs: it contains every edge of g whose endpoints are both
// in the set (Section 2). Vertices not present in g are ignored.
func (g *Graph) InducedSubgraph(ids []VertexID) *Graph {
	keep := make(map[VertexID]bool, len(ids))
	for _, id := range ids {
		if g.HasVertex(id) {
			keep[id] = true
		}
	}
	b := NewBuilder(g.directed)
	for id := range keep {
		b.AddVertex(id, g.LabelOf(id))
	}
	for i := 0; i < g.NumVertices(); i++ {
		src := g.ids[i]
		if !keep[src] {
			continue
		}
		for _, he := range g.OutEdges(i) {
			dst := g.ids[he.To]
			if !keep[dst] {
				continue
			}
			if !g.directed && int(he.To) < i {
				continue
			}
			b.AddEdge(src, dst, he.Weight, he.Label)
		}
	}
	return b.Build()
}

// Neighborhood returns the external IDs of all vertices within d hops of the
// start vertex (including the start vertex itself), following out-edges and,
// for undirected graphs, the symmetric closure is already present in the
// adjacency. It is used to build the d_Q-neighbourhood for subgraph
// isomorphism (Section 5.1).
func (g *Graph) Neighborhood(start VertexID, d int) []VertexID {
	s := g.IndexOf(start)
	if s < 0 {
		return nil
	}
	dist := map[int]int{s: 0}
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == d {
			continue
		}
		for _, he := range g.OutEdges(u) {
			v := int(he.To)
			if _, seen := dist[v]; !seen {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
		// For directed graphs the d-neighbourhood used by SubIso also follows
		// in-edges so that matches around the anchor are preserved.
		if g.directed {
			for _, he := range g.InEdges(u) {
				v := int(he.To)
				if _, seen := dist[v]; !seen {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
	}
	out := make([]VertexID, 0, len(dist))
	for i := range dist {
		out = append(out, g.ids[i])
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	b := NewBuilder(g.directed)
	for i, id := range g.ids {
		b.AddVertex(id, g.labels[i])
	}
	for _, e := range g.Edges() {
		b.AddEdge(e.Src, e.Dst, e.Weight, e.Label)
	}
	return b.Build()
}

// String returns a short human readable description of the graph.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("graph{%s |V|=%d |E|=%d}", kind, g.NumVertices(), g.NumEdges())
}

// Builder accumulates vertices and edges and produces an immutable Graph.
// The zero value is not usable; call NewBuilder.
type Builder struct {
	directed bool
	ids      []VertexID
	index    map[VertexID]int32
	labels   []string
	edges    []builderEdge
}

type builderEdge struct {
	src, dst int32
	weight   float64
	label    string
}

// NewBuilder returns a Builder for a directed (directed=true) or undirected
// graph.
func NewBuilder(directed bool) *Builder {
	return &Builder{
		directed: directed,
		index:    make(map[VertexID]int32),
	}
}

// AddVertex adds a vertex with the given external ID and label. Adding an
// existing vertex updates its label and is otherwise a no-op. It returns the
// dense index assigned to the vertex.
func (b *Builder) AddVertex(id VertexID, label string) int {
	if i, ok := b.index[id]; ok {
		if label != "" {
			b.labels[i] = label
		}
		return int(i)
	}
	i := int32(len(b.ids))
	b.index[id] = i
	b.ids = append(b.ids, id)
	b.labels = append(b.labels, label)
	return int(i)
}

// AddEdge adds an edge from src to dst with the given weight and label.
// Unknown endpoints are added implicitly with empty labels. For undirected
// graphs the edge is stored once and surfaced in both adjacency directions.
func (b *Builder) AddEdge(src, dst VertexID, weight float64, label string) {
	si := int32(b.AddVertex(src, ""))
	di := int32(b.AddVertex(dst, ""))
	b.edges = append(b.edges, builderEdge{src: si, dst: di, weight: weight, label: label})
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.ids) }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the immutable Graph. The builder can keep being used after
// Build; subsequent Build calls include all accumulated data.
func (b *Builder) Build() *Graph {
	n := len(b.ids)
	g := &Graph{
		directed: b.directed,
		ids:      append([]VertexID(nil), b.ids...),
		labels:   append([]string(nil), b.labels...),
		index:    make(map[VertexID]int32, n),
		numEdges: len(b.edges),
	}
	for id, i := range b.index {
		g.index[id] = i
	}

	outDeg := make([]int32, n)
	inDeg := make([]int32, n)
	for _, e := range b.edges {
		outDeg[e.src]++
		inDeg[e.dst]++
		if !b.directed && e.src != e.dst {
			outDeg[e.dst]++
			inDeg[e.src]++
		}
	}
	g.outOff = prefixSum(outDeg)
	g.inOff = prefixSum(inDeg)
	g.outAdj = make([]HalfEdge, g.outOff[n])
	g.inAdj = make([]HalfEdge, g.inOff[n])

	outPos := make([]int32, n)
	inPos := make([]int32, n)
	copy(outPos, g.outOff[:n])
	copy(inPos, g.inOff[:n])
	place := func(src, dst int32, w float64, l string) {
		g.outAdj[outPos[src]] = HalfEdge{To: dst, Weight: w, Label: l}
		outPos[src]++
		g.inAdj[inPos[dst]] = HalfEdge{To: src, Weight: w, Label: l}
		inPos[dst]++
	}
	for _, e := range b.edges {
		place(e.src, e.dst, e.weight, e.label)
		if !b.directed && e.src != e.dst {
			place(e.dst, e.src, e.weight, e.label)
		}
	}
	return g
}

func prefixSum(deg []int32) []int32 {
	off := make([]int32, len(deg)+1)
	var sum int32
	for i, d := range deg {
		off[i] = sum
		sum += d
	}
	off[len(deg)] = sum
	return off
}

// FromEdges is a convenience constructor that builds a graph from explicit
// vertex and edge lists.
func FromEdges(directed bool, vertices []Vertex, edges []Edge) *Graph {
	b := NewBuilder(directed)
	for _, v := range vertices {
		b.AddVertex(v.ID, v.Label)
	}
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst, e.Weight, e.Label)
	}
	return b.Build()
}
