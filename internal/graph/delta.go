package graph

import (
	"fmt"
	"sort"
)

// Graph updates. Graphs themselves stay immutable — a batch of Update ops is
// applied with ApplyUpdates, which produces a new Graph and leaves the old
// one untouched. This copy-on-write discipline is what lets the engine keep
// snapshot-consistent fragments: queries in flight keep reading the epoch
// they started on while the session installs the next one (Section 3.4 of
// the paper: GRAPE handles dynamic graphs by treating each change as input
// to incremental evaluation, not by mutating shared state in place).

// UpdateKind discriminates the five supported graph change operations.
type UpdateKind uint8

const (
	// UpdateAddVertex adds a vertex (Src holds the ID, Label the label).
	// Adding an existing vertex only refreshes its label.
	UpdateAddVertex UpdateKind = iota
	// UpdateRemoveVertex removes a vertex and every edge incident to it.
	UpdateRemoveVertex
	// UpdateAddEdge inserts an edge Src→Dst with Weight and Label. Unknown
	// endpoints are added implicitly with empty labels.
	UpdateAddEdge
	// UpdateRemoveEdge removes every edge between Src and Dst (both
	// orientations for undirected graphs).
	UpdateRemoveEdge
	// UpdateReweightEdge sets the weight of every edge between Src and Dst
	// to Weight.
	UpdateReweightEdge
)

// String returns the op name used in logs and error messages.
func (k UpdateKind) String() string {
	switch k {
	case UpdateAddVertex:
		return "add-vertex"
	case UpdateRemoveVertex:
		return "remove-vertex"
	case UpdateAddEdge:
		return "add-edge"
	case UpdateRemoveEdge:
		return "remove-edge"
	case UpdateReweightEdge:
		return "reweight-edge"
	default:
		return fmt.Sprintf("update-kind(%d)", uint8(k))
	}
}

// Update is one graph change operation. Vertex ops use Src as the vertex ID
// and ignore Dst; edge ops use Src/Dst as the endpoints.
type Update struct {
	Kind   UpdateKind
	Src    VertexID
	Dst    VertexID
	Weight float64
	Label  string
}

// IsVertexOp reports whether the update is a vertex add/remove.
func (u Update) IsVertexOp() bool {
	return u.Kind == UpdateAddVertex || u.Kind == UpdateRemoveVertex
}

// String renders the update in a compact human-readable form.
func (u Update) String() string {
	switch u.Kind {
	case UpdateAddVertex:
		return fmt.Sprintf("+v %d", u.Src)
	case UpdateRemoveVertex:
		return fmt.Sprintf("-v %d", u.Src)
	case UpdateAddEdge:
		return fmt.Sprintf("+e %d->%d w=%g", u.Src, u.Dst, u.Weight)
	case UpdateRemoveEdge:
		return fmt.Sprintf("-e %d->%d", u.Src, u.Dst)
	case UpdateReweightEdge:
		return fmt.Sprintf("~e %d->%d w=%g", u.Src, u.Dst, u.Weight)
	default:
		return u.Kind.String()
	}
}

// Convenience constructors for update ops.

// AddVertexUpdate adds vertex id with the given label.
func AddVertexUpdate(id VertexID, label string) Update {
	return Update{Kind: UpdateAddVertex, Src: id, Label: label}
}

// RemoveVertexUpdate removes vertex id and its incident edges.
func RemoveVertexUpdate(id VertexID) Update {
	return Update{Kind: UpdateRemoveVertex, Src: id}
}

// AddEdgeUpdate inserts an edge src→dst.
func AddEdgeUpdate(src, dst VertexID, weight float64, label string) Update {
	return Update{Kind: UpdateAddEdge, Src: src, Dst: dst, Weight: weight, Label: label}
}

// RemoveEdgeUpdate removes the edges between src and dst.
func RemoveEdgeUpdate(src, dst VertexID) Update {
	return Update{Kind: UpdateRemoveEdge, Src: src, Dst: dst}
}

// ReweightEdgeUpdate sets the weight of the edges between src and dst.
func ReweightEdgeUpdate(src, dst VertexID, weight float64) Update {
	return Update{Kind: UpdateReweightEdge, Src: src, Dst: dst, Weight: weight}
}

// ApplyUpdates applies a batch of updates to g and returns the resulting
// graph; g itself is unchanged. Ops are applied in order, so a batch may add
// a vertex and then connect it. Removing a vertex or edge that does not
// exist is a no-op (streams generated against a slightly stale snapshot stay
// applicable); reweighting a missing edge inserts nothing and is likewise a
// no-op.
//
// This is the reference (full-rebuild) implementation, used by tests and
// benchmarks as the from-scratch ground truth; the partition layer maintains
// fragments incrementally with the same semantics.
func ApplyUpdates(g *Graph, batch []Update) *Graph {
	d := NewDeltaBuilder(g)
	for _, u := range batch {
		d.Apply(u)
	}
	return d.Build()
}

// DeltaBuilder applies update ops to a mutable overlay of a graph and builds
// the resulting immutable Graph. It is the workhorse behind both
// ApplyUpdates and the per-fragment rebuilds in internal/partition.
type DeltaBuilder struct {
	directed bool
	labels   map[VertexID]string // explicit vertices only
	edges    []Edge              // live edges, insertion order preserved
}

// NewDeltaBuilder starts an overlay holding the current vertices and edges
// of g. A nil g starts from an empty directed graph.
func NewDeltaBuilder(g *Graph) *DeltaBuilder {
	d := &DeltaBuilder{directed: true, labels: make(map[VertexID]string)}
	if g == nil {
		return d
	}
	d.directed = g.Directed()
	for i := 0; i < g.NumVertices(); i++ {
		d.labels[g.VertexAt(i)] = g.Label(i)
	}
	d.edges = g.Edges()
	return d
}

// HasVertex reports whether the overlay currently contains the vertex.
func (d *DeltaBuilder) HasVertex(id VertexID) bool {
	_, ok := d.labels[id]
	return ok
}

// matches reports whether edge e connects a and b (either orientation for
// undirected overlays).
func (d *DeltaBuilder) matches(e Edge, a, b VertexID) bool {
	if e.Src == a && e.Dst == b {
		return true
	}
	return !d.directed && e.Src == b && e.Dst == a
}

// Apply applies one update op to the overlay.
func (d *DeltaBuilder) Apply(u Update) {
	switch u.Kind {
	case UpdateAddVertex:
		if old, ok := d.labels[u.Src]; !ok || (u.Label != "" && old != u.Label) {
			d.labels[u.Src] = u.Label
		}
	case UpdateRemoveVertex:
		delete(d.labels, u.Src)
		live := d.edges[:0]
		for _, e := range d.edges {
			if e.Src != u.Src && e.Dst != u.Src {
				live = append(live, e)
			}
		}
		d.edges = live
	case UpdateAddEdge:
		if _, ok := d.labels[u.Src]; !ok {
			d.labels[u.Src] = ""
		}
		if _, ok := d.labels[u.Dst]; !ok {
			d.labels[u.Dst] = ""
		}
		d.edges = append(d.edges, Edge{Src: u.Src, Dst: u.Dst, Weight: u.Weight, Label: u.Label})
	case UpdateRemoveEdge:
		live := d.edges[:0]
		for _, e := range d.edges {
			if !d.matches(e, u.Src, u.Dst) {
				live = append(live, e)
			}
		}
		d.edges = live
	case UpdateReweightEdge:
		for i, e := range d.edges {
			if d.matches(e, u.Src, u.Dst) {
				d.edges[i].Weight = u.Weight
			}
		}
	}
}

// PruneIsolated removes every vertex that has no incident edge and for
// which keep returns false. The partition layer uses it to drop border
// copies orphaned by edge deletions while preserving owned vertices.
func (d *DeltaBuilder) PruneIsolated(keep func(VertexID) bool) {
	deg := make(map[VertexID]int, len(d.labels))
	for _, e := range d.edges {
		deg[e.Src]++
		deg[e.Dst]++
	}
	for id := range d.labels {
		if deg[id] == 0 && !keep(id) {
			delete(d.labels, id)
		}
	}
}

// Build produces the immutable Graph for the overlay's current state.
// Vertices appear in ascending order of external ID, so rebuilds are
// deterministic regardless of op order.
func (d *DeltaBuilder) Build() *Graph {
	b := NewBuilder(d.directed)
	// Recover a deterministic vertex order: edges alone would drop isolated
	// vertices and maps iterate randomly, so track insertion order.
	for _, id := range d.vertexOrder() {
		b.AddVertex(id, d.labels[id])
	}
	for _, e := range d.edges {
		b.AddEdge(e.Src, e.Dst, e.Weight, e.Label)
	}
	return b.Build()
}

// vertexOrder returns the overlay's vertices sorted by ID. External IDs are
// the only stable key once vertices have been added and removed, and sorted
// order makes rebuilds reproducible regardless of op order.
func (d *DeltaBuilder) vertexOrder() []VertexID {
	out := make([]VertexID, 0, len(d.labels))
	for id := range d.labels {
		out = append(out, id)
	}
	sortVertexIDs(out)
	return out
}

func sortVertexIDs(ids []VertexID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
