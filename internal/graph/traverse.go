package graph

// Traversal helpers shared by sequential algorithms, partitioners and the
// synthetic-workload generators. These operate on dense indices.

// BFS runs a breadth-first search from the vertex with dense index start and
// calls visit for every reached vertex with its hop distance. Traversal
// follows out-edges only. It returns the number of vertices visited.
func (g *Graph) BFS(start int, visit func(v, depth int) bool) int {
	if start < 0 || start >= g.NumVertices() {
		return 0
	}
	seen := make([]bool, g.NumVertices())
	type item struct{ v, d int }
	queue := []item{{start, 0}}
	seen[start] = true
	visited := 0
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		visited++
		if visit != nil && !visit(it.v, it.d) {
			return visited
		}
		for _, he := range g.OutEdges(it.v) {
			if !seen[he.To] {
				seen[he.To] = true
				queue = append(queue, item{int(he.To), it.d + 1})
			}
		}
	}
	return visited
}

// DFS runs an iterative depth-first search from start following out-edges,
// calling visit for each newly discovered vertex. It returns the number of
// vertices visited.
func (g *Graph) DFS(start int, visit func(v int) bool) int {
	if start < 0 || start >= g.NumVertices() {
		return 0
	}
	seen := make([]bool, g.NumVertices())
	stack := []int{start}
	seen[start] = true
	visited := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visited++
		if visit != nil && !visit(v) {
			return visited
		}
		for _, he := range g.OutEdges(v) {
			if !seen[he.To] {
				seen[he.To] = true
				stack = append(stack, int(he.To))
			}
		}
	}
	return visited
}

// Undirect returns an undirected view of the graph built by symmetrizing the
// edge set. If the graph is already undirected it returns the receiver.
func (g *Graph) Undirect() *Graph {
	if !g.directed {
		return g
	}
	b := NewBuilder(false)
	for i, id := range g.ids {
		b.AddVertex(id, g.labels[i])
	}
	for _, e := range g.Edges() {
		b.AddEdge(e.Src, e.Dst, e.Weight, e.Label)
	}
	return b.Build()
}

// EstimateDiameter estimates the graph diameter (in hops, ignoring weights)
// with a double-sweep BFS heuristic starting from the vertex at dense index
// seed. The result is a lower bound on the true diameter and is what the
// benchmark harness uses to characterize the "road network vs social network"
// distinction that drives the paper's SSSP superstep counts.
func (g *Graph) EstimateDiameter(seed int) int {
	if g.NumVertices() == 0 {
		return 0
	}
	if seed < 0 || seed >= g.NumVertices() {
		seed = 0
	}
	far, depth := farthest(g, seed)
	_, depth2 := farthest(g, far)
	if depth2 > depth {
		depth = depth2
	}
	return depth
}

func farthest(g *Graph, start int) (v, depth int) {
	v, depth = start, 0
	g.BFS(start, func(u, d int) bool {
		if d > depth {
			depth, v = d, u
		}
		return true
	})
	return v, depth
}

// DegreeHistogram returns a map from out-degree to number of vertices with
// that degree. It is used by tests and by the dataset generators to check
// that synthetic graphs have the intended degree profile.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for i := 0; i < g.NumVertices(); i++ {
		h[g.OutDegree(i)]++
	}
	return h
}

// MaxDegree returns the maximum out-degree in the graph.
func (g *Graph) MaxDegree() int {
	m := 0
	for i := 0; i < g.NumVertices(); i++ {
		if d := g.OutDegree(i); d > m {
			m = d
		}
	}
	return m
}

// AverageDegree returns the average out-degree.
func (g *Graph) AverageDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	total := 0
	for i := 0; i < n; i++ {
		total += g.OutDegree(i)
	}
	return float64(total) / float64(n)
}
