#!/usr/bin/env bash
# End-to-end check of the distributed transport plane, as run by the
# e2e-distributed CI job (and runnable locally): build the binaries, launch
# three grape-worker processes plus a coordinator on localhost, run SSSP and
# CC on both execution planes, and diff the answers against a single-process
# run over the same graph and partition. A second phase drives the
# dynamic-graph serve commands (insert/delete/reweight/addv/rmv, mat/view)
# against the 3-worker cluster and diffs the maintained views against a
# single-process session absorbing the same update stream. A third phase
# scrapes the coordinator's debug endpoint (/metrics, /healthz) mid-session
# and checks that the query, superstep, wire and per-worker-process metric
# families are present and moving, and that the trace command exports a
# non-empty Chrome trace. Any mismatch or worker failure fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-9231}"
WORKERS="${WORKERS:-6}"
PROCS=3
WORKDIR="$(mktemp -d)"
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "building binaries..."
go build -o "$WORKDIR/grape" ./cmd/grape
go build -o "$WORKDIR/grape-worker" ./cmd/grape-worker
go build -o "$WORKDIR/graphgen" ./cmd/graphgen

"$WORKDIR/graphgen" -synthetic 2000x8000 -seed 7 -out "$WORKDIR/g.txt"

# Keep only the per-vertex answers (distances, component memberships):
# timings and stats legitimately differ between runs, the answers must not.
extract() { grep -E '^  dist\(|^  cc\(|^connected components' "$1"; }

for mode in bsp async; do
  for query in sssp cc; do
    echo "=== $query on the $mode plane ==="
    "$WORKDIR/grape" -graph "$WORKDIR/g.txt" -query "$query" -source 5 \
      -workers "$WORKERS" -mode "$mode" -top 1000000 > "$WORKDIR/single.txt"

    worker_pids=()
    for _ in $(seq "$PROCS"); do
      "$WORKDIR/grape-worker" -coordinator "127.0.0.1:$PORT" &
      worker_pids+=($!)
    done
    "$WORKDIR/grape" -graph "$WORKDIR/g.txt" -query "$query" -source 5 \
      -workers "$WORKERS" -mode "$mode" -top 1000000 \
      -listen "127.0.0.1:$PORT" -worker-procs "$PROCS" > "$WORKDIR/dist.txt"
    # Workers exit 0 on the coordinator's shutdown frame; a non-zero exit
    # (crash, protocol error) fails the job here. (A bare `wait` would
    # swallow their statuses, so wait on each pid explicitly.)
    for pid in "${worker_pids[@]}"; do
      if ! wait "$pid"; then
        echo "FAIL: grape-worker (pid $pid) exited non-zero" >&2
        exit 1
      fi
    done

    if ! diff <(extract "$WORKDIR/single.txt") <(extract "$WORKDIR/dist.txt"); then
      echo "MISMATCH: distributed $query/$mode differs from the single-process run" >&2
      exit 1
    fi
    echo "OK: $PROCS-process $query/$mode matches the single-process run"
  done
done

echo "=== dynamic graphs: updates + materialized views over TCP ==="
# A serve-mode command stream: materialize SSSP+CC views, mutate the graph
# (inserts that shorten paths, a reweight, a new vertex wired in, then
# deletions that force the recompute path), reading the views after each
# phase. The maintained answers — and the incremental/recomputed counters,
# which reflect identical maintenance decisions — must match between the
# single-process session and the 3-worker cluster.
cat > "$WORKDIR/dyn_cmds.txt" <<'EOF'
mat sssp 5
mat cc
view 1
view 2
insert 5 1200 0.25
insert 1200 1300 0.25
reweight 5 6 0.125
view 1
view 2
addv 5000 hub
insert 5000 5 1.0
insert 7 5000 0.5
view 1
view 2
delete 5 1200
view 1
view 2
rmv 5000
view 1
view 2
quit
EOF

# Per-vertex view answers plus the view headers (epoch, inc/recomputed
# counters, component counts) are deterministic; epoch/update lines carry
# timings, so they are excluded.
extract_dyn() { grep -E '^  dist\(|^view ' "$1"; }

"$WORKDIR/grape" -graph "$WORKDIR/g.txt" -workers "$WORKERS" -serve -top 1000000 \
  < "$WORKDIR/dyn_cmds.txt" > "$WORKDIR/single_dyn.txt"

worker_pids=()
for _ in $(seq "$PROCS"); do
  "$WORKDIR/grape-worker" -coordinator "127.0.0.1:$PORT" &
  worker_pids+=($!)
done
"$WORKDIR/grape" -graph "$WORKDIR/g.txt" -workers "$WORKERS" -serve -top 1000000 \
  -listen "127.0.0.1:$PORT" -worker-procs "$PROCS" \
  < "$WORKDIR/dyn_cmds.txt" > "$WORKDIR/dist_dyn.txt"
for pid in "${worker_pids[@]}"; do
  if ! wait "$pid"; then
    echo "FAIL: grape-worker (pid $pid) exited non-zero during the dynamic phase" >&2
    exit 1
  fi
done

if grep -qE 'update failed|maintenance error|not supported' "$WORKDIR/dist_dyn.txt"; then
  echo "FAIL: distributed session rejected dynamic commands:" >&2
  grep -E 'update failed|maintenance error|not supported' "$WORKDIR/dist_dyn.txt" >&2
  exit 1
fi
if ! diff <(extract_dyn "$WORKDIR/single_dyn.txt") <(extract_dyn "$WORKDIR/dist_dyn.txt"); then
  echo "MISMATCH: distributed maintained views differ from the single-process session" >&2
  exit 1
fi
echo "OK: $PROCS-process dynamic views match the single-process session"

echo "=== observability: /metrics + /healthz scrape and trace export ==="
# Drive the coordinator through a FIFO so the session stays resident while
# the debug endpoint is scraped mid-run; the scrape must show the query,
# superstep, wire and per-worker-process families with live values.
OBS_ADDR="127.0.0.1:$((PORT + 1))"
mkfifo "$WORKDIR/obs_in"
worker_pids=()
for _ in $(seq "$PROCS"); do
  "$WORKDIR/grape-worker" -coordinator "127.0.0.1:$PORT" &
  worker_pids+=($!)
done
"$WORKDIR/grape" -graph "$WORKDIR/g.txt" -workers "$WORKERS" -serve -top 10 \
  -listen "127.0.0.1:$PORT" -worker-procs "$PROCS" \
  -debug-listen "$OBS_ADDR" \
  < "$WORKDIR/obs_in" > "$WORKDIR/obs_out.txt" &
coord_pid=$!
exec 3> "$WORKDIR/obs_in"
echo "sssp 5" >&3
echo "insert 5 1200 0.25" >&3

# Wait for the query and the update to land (the output file tells us).
for _ in $(seq 100); do
  grep -q '^epoch 1:' "$WORKDIR/obs_out.txt" 2>/dev/null && break
  sleep 0.2
done
grep -q '^epoch 1:' "$WORKDIR/obs_out.txt" || {
  echo "FAIL: coordinator never absorbed the update batch" >&2
  cat "$WORKDIR/obs_out.txt" >&2
  exit 1
}

curl -fsS "http://$OBS_ADDR/healthz" | grep -q ok || {
  echo "FAIL: /healthz did not answer ok" >&2
  exit 1
}
curl -fsS "http://$OBS_ADDR/metrics" > "$WORKDIR/metrics.txt"
for family in \
  'grape_queries_finished_total{mode="bsp"} 1' \
  grape_supersteps_total \
  grape_superstep_seconds_bucket \
  grape_comm_messages_sent_total \
  grape_net_frames_sent_total \
  grape_net_reply_bytes_pooled_total \
  'grape_update_epochs_installed_total 1' \
  'grape_worker_calls_total{kind="peval",proc="0"}' \
  'grape_worker_calls_total{kind="peval",proc="1"}' \
  'grape_worker_calls_total{kind="peval",proc="2"}'
do
  if ! grep -qF "$family" "$WORKDIR/metrics.txt"; then
    echo "FAIL: /metrics is missing '$family'; scrape was:" >&2
    cat "$WORKDIR/metrics.txt" >&2
    exit 1
  fi
done

echo "trace $WORKDIR/trace.json" >&3
echo "quit" >&3
exec 3>&-
if ! wait "$coord_pid"; then
  echo "FAIL: coordinator exited non-zero during the observability phase" >&2
  exit 1
fi
for pid in "${worker_pids[@]}"; do
  if ! wait "$pid"; then
    echo "FAIL: grape-worker (pid $pid) exited non-zero during the observability phase" >&2
    exit 1
  fi
done
test -s "$WORKDIR/trace.json" || {
  echo "FAIL: trace export produced no file" >&2
  exit 1
}
grep -q traceEvents "$WORKDIR/trace.json" || {
  echo "FAIL: trace export is not Chrome trace-event JSON" >&2
  exit 1
}
echo "OK: /metrics shows all $PROCS worker processes and the trace exported"

echo "=== fault tolerance: worker kill + elastic join (chaos phase) ==="
# The same query/update stream on a single process is the oracle; the cluster
# run interleaves it with a kill -9 of one worker and a mid-session join of a
# replacement. Recovery must keep every answer byte-identical.
cat > "$WORKDIR/chaos_cmds.txt" <<'EOF'
sssp 5
sssp 5
cc
insert 5 1200 0.25
insert 1200 1300 0.25
sssp 5
cc
sssp 5
cc
quit
EOF
"$WORKDIR/grape" -graph "$WORKDIR/g.txt" -workers "$WORKERS" -serve -top 1000000 \
  < "$WORKDIR/chaos_cmds.txt" > "$WORKDIR/single_chaos.txt"

CHAOS_OBS="127.0.0.1:$((PORT + 2))"
mkfifo "$WORKDIR/chaos_in"
worker_pids=()
for _ in $(seq "$PROCS"); do
  "$WORKDIR/grape-worker" -coordinator "127.0.0.1:$PORT" &
  worker_pids+=($!)
done
"$WORKDIR/grape" -graph "$WORKDIR/g.txt" -workers "$WORKERS" -serve -top 1000000 \
  -listen "127.0.0.1:$PORT" -worker-procs "$PROCS" -recovery \
  -debug-listen "$CHAOS_OBS" \
  < "$WORKDIR/chaos_in" > "$WORKDIR/dist_chaos.txt" &
coord_pid=$!
exec 3> "$WORKDIR/chaos_in"

echo "sssp 5" >&3       # healthy query
sleep 0.2
kill -9 "${worker_pids[0]}"  # one worker process dies mid-stream
echo "sssp 5" >&3       # must recover: reassign fragments, answer exactly
echo "cc" >&3
echo "insert 5 1200 0.25" >&3
echo "insert 1200 1300 0.25" >&3
echo "sssp 5" >&3
echo "cc" >&3

# A replacement worker joins the running cluster; wait until the coordinator
# reports the join and at least one fragment rebalanced onto it.
"$WORKDIR/grape-worker" -coordinator "127.0.0.1:$PORT" -join &
join_pid=$!
for _ in $(seq 100); do
  if curl -fsS "http://$CHAOS_OBS/metrics" 2>/dev/null | grep -qE '^grape_net_worker_joins_total [1-9]'; then
    break
  fi
  sleep 0.2
done
curl -fsS "http://$CHAOS_OBS/metrics" > "$WORKDIR/chaos_metrics.txt"
grep -qE '^grape_net_worker_joins_total [1-9]' "$WORKDIR/chaos_metrics.txt" || {
  echo "FAIL: replacement worker never joined the cluster" >&2
  exit 1
}
grep -qE '^grape_net_fragments_moved_total [1-9]' "$WORKDIR/chaos_metrics.txt" || {
  echo "FAIL: no fragments moved after the kill + join" >&2
  exit 1
}
grep -qE '^grape_worker_recoveries_total [1-9]' "$WORKDIR/chaos_metrics.txt" || {
  echo "FAIL: the kill never triggered a recovery" >&2
  exit 1
}

echo "sssp 5" >&3       # the rebalanced cluster still answers exactly
echo "cc" >&3
echo "quit" >&3
exec 3>&-

if ! wait "$coord_pid"; then
  echo "FAIL: coordinator exited non-zero during the chaos phase" >&2
  exit 1
fi
# The killed worker died by SIGKILL (exit 137) — expected. The survivors and
# the joiner must exit 0 on the coordinator's shutdown frame.
wait "${worker_pids[0]}" 2>/dev/null || true
for pid in "${worker_pids[@]:1}"; do
  if ! wait "$pid"; then
    echo "FAIL: surviving grape-worker (pid $pid) exited non-zero during the chaos phase" >&2
    exit 1
  fi
done
if ! wait "$join_pid"; then
  echo "FAIL: joined grape-worker exited non-zero" >&2
  exit 1
fi

if grep -qE 'query failed|update failed' "$WORKDIR/dist_chaos.txt"; then
  echo "FAIL: queries or updates failed during the chaos phase:" >&2
  grep -E 'query failed|update failed' "$WORKDIR/dist_chaos.txt" >&2
  exit 1
fi
if ! diff <(extract "$WORKDIR/single_chaos.txt") <(extract "$WORKDIR/dist_chaos.txt"); then
  echo "MISMATCH: answers across a worker kill + join differ from the single-process run" >&2
  exit 1
fi
echo "OK: answers byte-identical across a worker kill and an elastic join"

echo "e2e-distributed: all checks passed"
