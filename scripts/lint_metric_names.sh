#!/usr/bin/env bash
# Metric-naming lint, as run by the lint CI job: every metric registered
# through internal/obs (package constructors or *Registry methods) must be a
# grape_-prefixed snake_case name — lowercase words separated by single
# underscores, matching ^grape_[a-z0-9]+(_[a-z0-9]+)*$. The registry enforces
# this at runtime too (it panics), but the lint catches a bad name on every
# push instead of on the first code path that registers it. Test files are
# excluded: the registry's own tests register deliberately invalid names to
# prove the panic fires.
set -euo pipefail
cd "$(dirname "$0")/.."

bad=0
# Find first-argument string literals of Counter/Gauge/Histogram
# constructors and their Vec variants, e.g. obs.Counter("grape_x_total", ...)
# or reg.HistogramVec("grape_y_seconds", ...).
while IFS=: read -r file line name; do
  if ! [[ "$name" =~ ^grape_[a-z0-9]+(_[a-z0-9]+)*$ ]]; then
    echo "$file:$line: metric name \"$name\" is not grape_-prefixed snake_case" >&2
    bad=1
  fi
done < <(grep -rnoE '\b(Counter|Gauge|Histogram)(Vec)?\("[^"]*"' \
           --include='*.go' --exclude='*_test.go' . \
         | sed -E 's/\b(Counter|Gauge|Histogram)(Vec)?\("([^"]*)"/\3/')

if [ "$bad" -ne 0 ]; then
  echo "metric-naming lint failed" >&2
  exit 1
fi
echo "metric-naming lint: all registered names are grape_-prefixed snake_case"
