// Social recommendation by collaborative filtering: the Section 5.3 workload.
// A bipartite user-product rating graph (the movieLens surrogate) is
// generated, a latent-factor model is trained with the CF PIE program
// (SGD + incremental ISGD), and a few recommendations are printed.
//
// Run with:
//
//	go run ./examples/recommend
package main

import (
	"fmt"
	"log"
	"sort"

	"grape"
	"grape/internal/graphgen"
	"grape/internal/seq"
)

func main() {
	ratings := graphgen.Bipartite(600, 120, 10, graphgen.Config{Seed: 5})
	fmt.Println("rating graph:", ratings)

	model, stats, err := grape.RunCF(ratings, grape.DefaultCFQuery(0.9), grape.Options{Workers: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained CF model: %d factor vectors, training RMSE %.3f, %d rounds\n",
		len(model.Factors), model.TrainingRMSE, model.Rounds)
	fmt.Println("engine:", stats)

	// Recommend the three products with the highest predicted rating for one
	// user, excluding products the user already rated.
	user := grape.VertexID(0)
	rated := map[grape.VertexID]bool{}
	for _, e := range ratings.Edges() {
		if e.Src == user {
			rated[e.Dst] = true
		}
	}
	uf, ok := model.Factors[user]
	if !ok {
		log.Fatalf("no factors learned for user %d", user)
	}
	type rec struct {
		product grape.VertexID
		score   float64
	}
	var recs []rec
	for v, vec := range model.Factors {
		if ratings.LabelOf(v) != "product" || rated[v] {
			continue
		}
		recs = append(recs, rec{product: v, score: seq.Dot(uf, vec)})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].score != recs[j].score {
			return recs[i].score > recs[j].score
		}
		return recs[i].product < recs[j].product
	})
	fmt.Printf("top recommendations for user %d:\n", user)
	for i, r := range recs {
		if i == 3 {
			break
		}
		fmt.Printf("  product %d (predicted rating %.2f)\n", r.product, r.score)
	}
}
