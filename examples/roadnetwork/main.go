// Road-network traversal: the scenario behind Table 1 of the paper. A grid
// road network (the surrogate for the US road network) is generated, a
// shortest-path query is answered with GRAPE under two partition strategies,
// and the superstep/communication statistics are printed so the effect of a
// locality-preserving partition is visible.
//
// Run with:
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"log"

	"grape"
	"grape/internal/graphgen"
)

func main() {
	// A 60x60 grid: ~3600 intersections, diameter over a hundred hops —
	// small enough for a laptop, large enough to show the road-network
	// behaviour (thousands of vertex-centric supersteps vs tens for GRAPE).
	road := graphgen.RoadNetwork(60, 60, graphgen.Config{Seed: 7})
	fmt.Println("road network:", road, "estimated diameter:", road.EstimateDiameter(0))

	source := road.VertexAt(0)
	for _, strategyName := range []string{"hash", "multilevel"} {
		strat, ok := grape.PartitionStrategy(strategyName)
		if !ok {
			log.Fatalf("unknown strategy %q", strategyName)
		}
		dist, stats, err := grape.RunSSSP(road, source, grape.Options{Workers: 8, Strategy: strat})
		if err != nil {
			log.Fatal(err)
		}
		reached := 0
		furthest := 0.0
		for _, d := range dist {
			if d < 1e300 {
				reached++
				if d > furthest {
					furthest = d
				}
			}
		}
		fmt.Printf("strategy=%-11s reached %d intersections, furthest %.1f, %s\n",
			strategyName, reached, furthest, stats)
	}

	// Connected components of the same network (Fig 6d workload).
	cc, stats, err := grape.RunCC(road, grape.Options{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	comps := map[grape.VertexID]int{}
	for _, cid := range cc {
		comps[cid]++
	}
	fmt.Printf("connected components: %d (%s)\n", len(comps), stats)
}
