// Social-media marketing by graph-pattern matching: the motivating scenario
// of Section 5.1. A labeled social network is generated, a small pattern
// ("a designer who follows a photographer who follows a brand account") is
// matched both via graph simulation and via subgraph isomorphism, and the
// results of the two semantics are compared.
//
// Run with:
//
//	go run ./examples/socialmatch
package main

import (
	"fmt"
	"log"

	"grape"
	"grape/internal/graphgen"
)

func main() {
	// A power-law follower network whose accounts carry one of a few role
	// labels.
	network := graphgen.SocialNetwork(3000, 5, graphgen.Config{Seed: 99, Labels: 6})
	fmt.Println("social network:", network)

	// Pattern: L0 -> L1 -> L2 with an extra edge L0 -> L2 (labels are drawn
	// from the generated alphabet so the pattern has matches).
	pb := grape.NewGraphBuilder(true)
	pb.AddVertex(0, "L0")
	pb.AddVertex(1, "L1")
	pb.AddVertex(2, "L2")
	pb.AddEdge(0, 1, 1, "follows")
	pb.AddEdge(1, 2, 1, "follows")
	pb.AddEdge(0, 2, 1, "follows")
	pattern := pb.Build()

	opts := grape.Options{Workers: 8}

	sim, simStats, err := grape.RunSim(network, pattern, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph simulation (every account that can play each role):")
	for role := grape.VertexID(0); role <= 2; role++ {
		fmt.Printf("  role L%d: %d candidate accounts\n", role, len(sim[role]))
	}
	fmt.Println("  engine:", simStats)

	matches, isoStats, err := grape.RunSubIso(network, pattern, 50, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subgraph isomorphism: %d exact embeddings (capped at 50)\n", len(matches))
	for i, m := range matches {
		if i == 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  match %d: L0→%d L1→%d L2→%d\n", i, m[0], m[1], m[2])
	}
	fmt.Println("  engine:", isoStats)
}
