// Quickstart: build a small weighted graph, run single-source shortest paths
// and connected components through the public GRAPE API, and print the
// answers together with the engine's superstep/communication statistics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"grape"
)

func main() {
	// A small delivery network: weights are travel times in minutes.
	b := grape.NewGraphBuilder(true)
	edges := []struct {
		from, to grape.VertexID
		minutes  float64
	}{
		{1, 2, 7}, {1, 3, 9}, {1, 6, 14},
		{2, 3, 10}, {2, 4, 15},
		{3, 4, 11}, {3, 6, 2},
		{4, 5, 6},
		{6, 5, 9},
		// A disconnected service region.
		{10, 11, 3}, {11, 12, 4},
	}
	for _, e := range edges {
		b.AddEdge(e.from, e.to, e.minutes, "road")
	}
	g := b.Build()

	opts := grape.Options{Workers: 3}

	dist, stats, err := grape.RunSSSP(g, 1, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("shortest travel times from depot 1:")
	for v := grape.VertexID(1); v <= 6; v++ {
		fmt.Printf("  node %d: %.0f minutes\n", v, dist[v])
	}
	fmt.Println("engine:", stats)

	cc, _, err := grape.RunCC(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	regions := map[grape.VertexID][]grape.VertexID{}
	for v, cid := range cc {
		regions[cid] = append(regions[cid], v)
	}
	fmt.Printf("service regions: %d\n", len(regions))
	for cid, members := range regions {
		fmt.Printf("  region %d has %d nodes\n", cid, len(members))
	}
}
