package grape

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"grape/internal/pie"
)

// distributedGraph builds a deterministic random graph large enough to have
// real cross-fragment traffic on 6 fragments.
func distributedGraph(directed bool, n, extraEdges int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	b := NewGraphBuilder(directed)
	for v := 0; v < n; v++ {
		b.AddVertex(VertexID(v), "")
	}
	// A ring keeps everything connected, extra random edges add shortcuts.
	for v := 0; v < n; v++ {
		b.AddEdge(VertexID(v), VertexID((v+1)%n), 1+r.Float64()*4, "")
	}
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			b.AddEdge(VertexID(u), VertexID(v), 0.5+r.Float64()*9, "")
		}
	}
	return b.Build()
}

// startCluster brings up a distributed session over real TCP on an
// ephemeral localhost port, with procs worker processes simulated by
// goroutines running the full worker loop (dial, handshake, serve). It
// returns the session and a wait function that asserts all workers exited
// cleanly on Close.
func startCluster(t *testing.T, g *Graph, workers, procs int, mode Mode) (*Session, func()) {
	t.Helper()
	addrCh := make(chan string, procs)
	var wg sync.WaitGroup
	workerErrs := make([]error, procs)
	opts := Options{
		Workers: workers,
		Mode:    mode,
		Distributed: &Distributed{
			Listen:           "127.0.0.1:0",
			WorkerProcs:      procs,
			HandshakeTimeout: 30 * time.Second,
			OnListen: func(addr string) {
				for i := 0; i < procs; i++ {
					addrCh <- addr
				}
			},
		},
	}
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = ServeWorker(<-addrCh, 10*time.Second, nil)
		}(i)
	}
	s, err := NewSession(g, opts)
	if err != nil {
		t.Fatalf("NewSession(distributed): %v", err)
	}
	return s, func() {
		wg.Wait()
		for i, err := range workerErrs {
			if err != nil {
				t.Errorf("worker %d exited with error: %v", i, err)
			}
		}
	}
}

// TestDistributedMatchesInProcess is the e2e acceptance check: a 3-process
// localhost TCP cluster must produce the same SSSP/CC/PageRank answers as
// the in-process transport, on both execution planes.
func TestDistributedMatchesInProcess(t *testing.T) {
	const workers, procs = 6, 3
	g := distributedGraph(false, 300, 500, 42)

	local, err := NewSession(g, Options{Workers: workers})
	if err != nil {
		t.Fatalf("NewSession(local): %v", err)
	}
	defer local.Close()

	wantDist, _, err := local.SSSP(0)
	if err != nil {
		t.Fatalf("local SSSP: %v", err)
	}
	wantCC, _, err := local.CC()
	if err != nil {
		t.Fatalf("local CC: %v", err)
	}
	wantPR, _, err := local.PageRank()
	if err != nil {
		t.Fatalf("local PageRank: %v", err)
	}
	// The async comparison uses a tight convergence tolerance and a deep
	// round budget so both planes refine to (essentially) the unique
	// fixpoint instead of wherever their different schedules first dip under
	// the default tolerance — the same contract as pie's cross-plane tests.
	// The round cap stays finite: it is PageRank's practical quiescing
	// mechanism once the masses are at float precision.
	tightPR := pie.PageRankQuery{Damping: 0.85, Tolerance: 1e-10, MaxRounds: 400}
	wantTight, err := local.Run(pie.PageRank{}, tightPR)
	if err != nil {
		t.Fatalf("local tight PageRank: %v", err)
	}
	wantTightPR := wantTight.Output.(map[VertexID]float64)

	for _, mode := range []Mode{BSP, Async} {
		t.Run(mode.String(), func(t *testing.T) {
			s, waitWorkers := startCluster(t, g, workers, procs, mode)
			defer waitWorkers()
			defer s.Close()

			gotDist, stats, err := s.SSSP(0)
			if err != nil {
				t.Fatalf("distributed SSSP: %v", err)
			}
			if stats.MessagesSent == 0 {
				t.Fatalf("distributed SSSP exchanged no messages; not exercising the wire")
			}
			if !reflect.DeepEqual(gotDist, wantDist) {
				t.Fatalf("distributed SSSP (%v) differs from in-process answer", mode)
			}

			gotCC, _, err := s.CC()
			if err != nil {
				t.Fatalf("distributed CC: %v", err)
			}
			if !reflect.DeepEqual(gotCC, wantCC) {
				t.Fatalf("distributed CC (%v) differs from in-process answer", mode)
			}

			// BSP's lockstep schedule tracks the in-process run exactly (up
			// to float ulps) even on the default query; async termination is
			// tolerance-based, so it is compared at a tight tolerance where
			// both planes quiesce at the unique fixpoint.
			want, tol := wantPR, 1e-9
			var gotPR map[VertexID]float64
			if mode == Async {
				want, tol = wantTightPR, 1e-3
				res, err := s.Run(pie.PageRank{}, tightPR)
				if err != nil {
					t.Fatalf("distributed tight PageRank: %v", err)
				}
				gotPR = res.Output.(map[VertexID]float64)
			} else {
				var err error
				if gotPR, _, err = s.PageRank(); err != nil {
					t.Fatalf("distributed PageRank: %v", err)
				}
			}
			if len(gotPR) != len(want) {
				t.Fatalf("distributed PageRank returned %d ranks, want %d", len(gotPR), len(want))
			}
			for v, w := range want {
				if got := gotPR[v]; math.Abs(got-w) > tol*math.Max(1, w) {
					t.Fatalf("PageRank(%d) = %v, want %v (±%g relative)", v, got, w, tol)
				}
			}
		})
	}
}

// TestDistributedDirectedSSSP exercises a directed graph and a non-zero
// source through the full wire path.
func TestDistributedDirectedSSSP(t *testing.T) {
	const workers, procs = 4, 2
	g := distributedGraph(true, 200, 400, 7)

	wantDist, _, err := RunSSSP(g, 17, Options{Workers: workers})
	if err != nil {
		t.Fatalf("local SSSP: %v", err)
	}
	s, waitWorkers := startCluster(t, g, workers, procs, BSP)
	defer waitWorkers()
	defer s.Close()
	gotDist, _, err := s.SSSP(17)
	if err != nil {
		t.Fatalf("distributed SSSP: %v", err)
	}
	if !reflect.DeepEqual(gotDist, wantDist) {
		t.Fatalf("distributed directed SSSP differs from in-process answer")
	}
}

// TestDistributedRejectsLocalOnlyPrograms: programs without wire codecs are
// rejected with a clear error instead of hanging the cluster.
func TestDistributedRejectsLocalOnlyPrograms(t *testing.T) {
	g := distributedGraph(true, 50, 60, 3)
	s, waitWorkers := startCluster(t, g, 2, 1, BSP)
	defer waitWorkers()
	defer s.Close()

	pattern := NewGraphBuilder(true)
	pattern.AddEdge(1, 2, 1, "")
	if _, _, err := s.Sim(pattern.Build()); err == nil {
		t.Fatalf("Sim on a distributed session should fail (no wire codecs)")
	}
}

// TestDistributedUpdatesUnsupported: dynamic updates are gated off with a
// sentinel error on distributed sessions.
func TestDistributedUpdatesUnsupported(t *testing.T) {
	g := distributedGraph(false, 40, 40, 5)
	s, waitWorkers := startCluster(t, g, 2, 2, BSP)
	defer waitWorkers()
	defer s.Close()

	_, err := s.ApplyUpdates([]Update{EdgeInsert(1, 2, 1)})
	if !errors.Is(err, ErrDistributedUnsupported) {
		t.Fatalf("ApplyUpdates on distributed session: got %v, want ErrDistributedUnsupported", err)
	}
	if _, err := s.MaterializeSSSP(0); !errors.Is(err, ErrDistributedUnsupported) {
		t.Fatalf("MaterializeSSSP on distributed session: got %v, want ErrDistributedUnsupported", err)
	}
}
