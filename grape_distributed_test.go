package grape

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"grape/internal/pie"
	"grape/internal/workload"
)

// distributedGraph builds a deterministic random graph large enough to have
// real cross-fragment traffic on 6 fragments.
func distributedGraph(directed bool, n, extraEdges int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	b := NewGraphBuilder(directed)
	for v := 0; v < n; v++ {
		b.AddVertex(VertexID(v), "")
	}
	// A ring keeps everything connected, extra random edges add shortcuts.
	for v := 0; v < n; v++ {
		b.AddEdge(VertexID(v), VertexID((v+1)%n), 1+r.Float64()*4, "")
	}
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			b.AddEdge(VertexID(u), VertexID(v), 0.5+r.Float64()*9, "")
		}
	}
	return b.Build()
}

// startCluster brings up a distributed session over real TCP on an
// ephemeral localhost port, with procs worker processes simulated by
// goroutines running the full worker loop (dial, handshake, serve). It
// returns the session and a wait function that asserts all workers exited
// cleanly on Close.
func startCluster(t *testing.T, g *Graph, workers, procs int, mode Mode, mutate ...func(*Options)) (*Session, func()) {
	t.Helper()
	addrCh := make(chan string, procs)
	var wg sync.WaitGroup
	workerErrs := make([]error, procs)
	opts := Options{
		Workers: workers,
		Mode:    mode,
		Distributed: &Distributed{
			Listen:           "127.0.0.1:0",
			WorkerProcs:      procs,
			HandshakeTimeout: 30 * time.Second,
			OnListen: func(addr string) {
				for i := 0; i < procs; i++ {
					addrCh <- addr
				}
			},
		},
	}
	for _, m := range mutate {
		m(&opts)
	}
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = ServeWorker(<-addrCh, WorkerOptions{DialTimeout: 10 * time.Second})
		}(i)
	}
	s, err := NewSession(g, opts)
	if err != nil {
		t.Fatalf("NewSession(distributed): %v", err)
	}
	return s, func() {
		wg.Wait()
		for i, err := range workerErrs {
			if err != nil {
				t.Errorf("worker %d exited with error: %v", i, err)
			}
		}
	}
}

// TestDistributedMatchesInProcess is the e2e acceptance check: a 3-process
// localhost TCP cluster must produce the same SSSP/CC/PageRank answers as
// the in-process transport, on both execution planes.
func TestDistributedMatchesInProcess(t *testing.T) {
	const workers, procs = 6, 3
	g := distributedGraph(false, 300, 500, 42)

	local, err := NewSession(g, Options{Workers: workers})
	if err != nil {
		t.Fatalf("NewSession(local): %v", err)
	}
	defer local.Close()

	wantDist, _, err := local.SSSP(0)
	if err != nil {
		t.Fatalf("local SSSP: %v", err)
	}
	wantCC, _, err := local.CC()
	if err != nil {
		t.Fatalf("local CC: %v", err)
	}
	wantPR, _, err := local.PageRank()
	if err != nil {
		t.Fatalf("local PageRank: %v", err)
	}
	// The async comparison uses a tight convergence tolerance and a deep
	// round budget so both planes refine to (essentially) the unique
	// fixpoint instead of wherever their different schedules first dip under
	// the default tolerance — the same contract as pie's cross-plane tests.
	// The round cap stays finite: it is PageRank's practical quiescing
	// mechanism once the masses are at float precision.
	tightPR := pie.PageRankQuery{Damping: 0.85, Tolerance: 1e-10, MaxRounds: 400}
	wantTight, err := local.Run(pie.PageRank{}, tightPR)
	if err != nil {
		t.Fatalf("local tight PageRank: %v", err)
	}
	wantTightPR := wantTight.Output.(map[VertexID]float64)

	for _, mode := range []Mode{BSP, Async} {
		t.Run(mode.String(), func(t *testing.T) {
			s, waitWorkers := startCluster(t, g, workers, procs, mode)
			defer waitWorkers()
			defer s.Close()

			gotDist, stats, err := s.SSSP(0)
			if err != nil {
				t.Fatalf("distributed SSSP: %v", err)
			}
			if stats.MessagesSent == 0 {
				t.Fatalf("distributed SSSP exchanged no messages; not exercising the wire")
			}
			if !reflect.DeepEqual(gotDist, wantDist) {
				t.Fatalf("distributed SSSP (%v) differs from in-process answer", mode)
			}

			gotCC, _, err := s.CC()
			if err != nil {
				t.Fatalf("distributed CC: %v", err)
			}
			if !reflect.DeepEqual(gotCC, wantCC) {
				t.Fatalf("distributed CC (%v) differs from in-process answer", mode)
			}

			// BSP's lockstep schedule tracks the in-process run exactly (up
			// to float ulps) even on the default query; async termination is
			// tolerance-based, so it is compared at a tight tolerance where
			// both planes quiesce at the unique fixpoint.
			want, tol := wantPR, 1e-9
			var gotPR map[VertexID]float64
			if mode == Async {
				want, tol = wantTightPR, 1e-3
				res, err := s.Run(pie.PageRank{}, tightPR)
				if err != nil {
					t.Fatalf("distributed tight PageRank: %v", err)
				}
				gotPR = res.Output.(map[VertexID]float64)
			} else {
				var err error
				if gotPR, _, err = s.PageRank(); err != nil {
					t.Fatalf("distributed PageRank: %v", err)
				}
			}
			if len(gotPR) != len(want) {
				t.Fatalf("distributed PageRank returned %d ranks, want %d", len(gotPR), len(want))
			}
			for v, w := range want {
				if got := gotPR[v]; math.Abs(got-w) > tol*math.Max(1, w) {
					t.Fatalf("PageRank(%d) = %v, want %v (±%g relative)", v, got, w, tol)
				}
			}
		})
	}
}

// TestDistributedDirectedSSSP exercises a directed graph and a non-zero
// source through the full wire path.
func TestDistributedDirectedSSSP(t *testing.T) {
	const workers, procs = 4, 2
	g := distributedGraph(true, 200, 400, 7)

	wantDist, _, err := RunSSSP(g, 17, Options{Workers: workers})
	if err != nil {
		t.Fatalf("local SSSP: %v", err)
	}
	s, waitWorkers := startCluster(t, g, workers, procs, BSP)
	defer waitWorkers()
	defer s.Close()
	gotDist, _, err := s.SSSP(17)
	if err != nil {
		t.Fatalf("distributed SSSP: %v", err)
	}
	if !reflect.DeepEqual(gotDist, wantDist) {
		t.Fatalf("distributed directed SSSP differs from in-process answer")
	}
}

// TestDistributedRejectsLocalOnlyPrograms: programs without wire codecs are
// rejected with a clear error instead of hanging the cluster.
func TestDistributedRejectsLocalOnlyPrograms(t *testing.T) {
	g := distributedGraph(true, 50, 60, 3)
	s, waitWorkers := startCluster(t, g, 2, 1, BSP)
	defer waitWorkers()
	defer s.Close()

	pattern := NewGraphBuilder(true)
	pattern.AddEdge(1, 2, 1, "")
	if _, _, err := s.Sim(pattern.Build()); err == nil {
		t.Fatalf("Sim on a distributed session should fail (no wire codecs)")
	}
}

// TestDistributedDynamicMatchesInProcess is the dynamic-graph acceptance
// check: a 100-batch randomized update stream (inserts, deletions,
// reweights, vertex adds and removals) applied to a 3-process TCP cluster
// must keep materialized SSSP and CC views byte-identical to an in-process
// session absorbing the same stream — and, at the end, to a from-scratch
// recompute over the final graph.
func TestDistributedDynamicMatchesInProcess(t *testing.T) {
	const workers, procs = 6, 3
	g := distributedGraph(false, 150, 250, 21)

	local, err := NewSession(g, Options{Workers: workers})
	if err != nil {
		t.Fatalf("NewSession(local): %v", err)
	}
	defer local.Close()
	dist, waitWorkers := startCluster(t, g, workers, procs, BSP)
	defer waitWorkers()
	defer dist.Close()

	localSSSP, err := local.MaterializeSSSP(0)
	if err != nil {
		t.Fatalf("local MaterializeSSSP: %v", err)
	}
	distSSSP, err := dist.MaterializeSSSP(0)
	if err != nil {
		t.Fatalf("distributed MaterializeSSSP: %v", err)
	}
	localCC, err := local.MaterializeCC()
	if err != nil {
		t.Fatalf("local MaterializeCC: %v", err)
	}
	distCC, err := dist.MaterializeCC()
	if err != nil {
		t.Fatalf("distributed MaterializeCC: %v", err)
	}

	stream := workload.UpdateStream(g, workload.StreamConfig{Seed: 77, Batches: 100, BatchSize: 4})
	if len(stream) != 100 {
		t.Fatalf("stream has %d batches, want 100", len(stream))
	}
	for _, tb := range stream {
		if _, err := local.ApplyUpdates(tb.Ops); err != nil {
			t.Fatalf("local batch %d: %v", tb.Seq, err)
		}
		if _, err := dist.ApplyUpdates(tb.Ops); err != nil {
			t.Fatalf("distributed batch %d: %v", tb.Seq, err)
		}
		wantD, err := localSSSP.Distances()
		if err != nil {
			t.Fatalf("local SSSP view after batch %d: %v", tb.Seq, err)
		}
		gotD, err := distSSSP.Distances()
		if err != nil {
			t.Fatalf("distributed SSSP view after batch %d: %v", tb.Seq, err)
		}
		if !reflect.DeepEqual(gotD, wantD) {
			t.Fatalf("distributed SSSP view differs from in-process after batch %d", tb.Seq)
		}
		wantC, err := localCC.Components()
		if err != nil {
			t.Fatalf("local CC view after batch %d: %v", tb.Seq, err)
		}
		gotC, err := distCC.Components()
		if err != nil {
			t.Fatalf("distributed CC view after batch %d: %v", tb.Seq, err)
		}
		if !reflect.DeepEqual(gotC, wantC) {
			t.Fatalf("distributed CC view differs from in-process after batch %d", tb.Seq)
		}
	}
	if got, want := dist.Epoch(), local.Epoch(); got != want || got != 100 {
		t.Fatalf("epochs diverged: distributed %d, local %d, want 100", got, want)
	}

	// The randomized mix (deletions included) must have exercised both
	// maintenance paths on the distributed side.
	if st := distSSSP.Stats(); st.Incremental == 0 || st.Recomputed == 0 || st.Maintenances != 100 {
		t.Fatalf("distributed SSSP maintenance did not exercise both paths: %+v", st)
	}

	// From-scratch recompute over the final graph agrees with the views.
	finalD, _, err := dist.SSSP(0)
	if err != nil {
		t.Fatalf("distributed from-scratch SSSP: %v", err)
	}
	viewD, _ := distSSSP.Distances()
	if !reflect.DeepEqual(finalD, viewD) {
		t.Fatalf("distributed SSSP view differs from from-scratch recompute")
	}
	localFinalD, _, err := local.SSSP(0)
	if err != nil {
		t.Fatalf("local from-scratch SSSP: %v", err)
	}
	if !reflect.DeepEqual(finalD, localFinalD) {
		t.Fatalf("distributed from-scratch SSSP differs from in-process")
	}
	finalC, _, err := dist.CC()
	if err != nil {
		t.Fatalf("distributed from-scratch CC: %v", err)
	}
	viewC, _ := distCC.Components()
	if !reflect.DeepEqual(finalC, viewC) {
		t.Fatalf("distributed CC view differs from from-scratch recompute")
	}

	// Closing a view releases its worker-side state; the session keeps
	// serving queries and updates.
	if err := distSSSP.Close(); err != nil {
		t.Fatalf("closing distributed view: %v", err)
	}
	if _, err := dist.ApplyUpdates([]Update{EdgeInsert(1, 2, 0.5)}); err != nil {
		t.Fatalf("ApplyUpdates after view close: %v", err)
	}
}

// TestDistributedPageRankViewMaintained: a program without EvalDelta is
// maintained by full recompute on the workers — the retained state is
// swapped for each batch's fresh run. BSP PageRank tracks the in-process
// run to float ulps, so the views are compared at a tight relative
// tolerance.
func TestDistributedPageRankViewMaintained(t *testing.T) {
	const workers, procs = 4, 2
	g := distributedGraph(true, 120, 200, 9)

	local, err := NewSession(g, Options{Workers: workers})
	if err != nil {
		t.Fatalf("NewSession(local): %v", err)
	}
	defer local.Close()
	dist, waitWorkers := startCluster(t, g, workers, procs, BSP)
	defer waitWorkers()
	defer dist.Close()

	q := pie.DefaultPageRankQuery()
	localView, err := local.Materialize(pie.PageRank{}, q)
	if err != nil {
		t.Fatalf("local Materialize(PageRank): %v", err)
	}
	distView, err := dist.Materialize(pie.PageRank{}, q)
	if err != nil {
		t.Fatalf("distributed Materialize(PageRank): %v", err)
	}

	stream := workload.UpdateStream(g, workload.StreamConfig{Seed: 5, Batches: 10, BatchSize: 3})
	for _, tb := range stream {
		if _, err := local.ApplyUpdates(tb.Ops); err != nil {
			t.Fatalf("local batch %d: %v", tb.Seq, err)
		}
		if _, err := dist.ApplyUpdates(tb.Ops); err != nil {
			t.Fatalf("distributed batch %d: %v", tb.Seq, err)
		}
	}
	wantAny, err := localView.Result()
	if err != nil {
		t.Fatalf("local PageRank view: %v", err)
	}
	gotAny, err := distView.Result()
	if err != nil {
		t.Fatalf("distributed PageRank view: %v", err)
	}
	want := wantAny.(map[VertexID]float64)
	got := gotAny.(map[VertexID]float64)
	if len(got) != len(want) {
		t.Fatalf("distributed PageRank view has %d ranks, want %d", len(got), len(want))
	}
	for v, w := range want {
		if g, ok := got[v]; !ok || math.Abs(g-w) > 1e-9*math.Max(1, w) {
			t.Fatalf("PageRank view rank(%d) = %v, want %v", v, got[v], w)
		}
	}
	if st := distView.Stats(); st.Incremental != 0 || st.Recomputed != 10 {
		t.Fatalf("PageRank view should be recompute-only: %+v", st)
	}
}

// TestDistributedUpdatesConcurrentQueries runs queries concurrently with
// update batches on a distributed session: queries pin the epoch they
// started on (the workers retain it until the floor passes), so every query
// must return a complete, internally consistent answer. Run under -race in
// CI.
func TestDistributedUpdatesConcurrentQueries(t *testing.T) {
	const workers, procs = 4, 2
	g := distributedGraph(false, 100, 150, 13)
	dist, waitWorkers := startCluster(t, g, workers, procs, BSP)
	defer waitWorkers()
	defer dist.Close()

	if _, err := dist.MaterializeCC(); err != nil {
		t.Fatalf("MaterializeCC: %v", err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := dist.SSSP(VertexID(i)); err != nil {
					errCh <- err
					return
				}
			}
		}(i)
	}
	for b := 0; b < 10; b++ {
		batch := []Update{
			EdgeInsert(VertexID(b), VertexID(90-b), 0.5),
			EdgeReweight(VertexID(b), VertexID(b+1), 0.25),
		}
		if _, err := dist.ApplyUpdates(batch); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent query during updates: %v", err)
	}
	if dist.Epoch() != 10 {
		t.Fatalf("epoch = %d, want 10", dist.Epoch())
	}
}
