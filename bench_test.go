package grape

// bench_test.go holds one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark delegates to the harness in
// internal/bench, which runs the experiment on the synthetic dataset
// surrogates at a laptop-friendly scale and reports, besides ns/op, custom
// metrics that correspond to what the paper plots: comm-MB/op (Figure 8),
// supersteps/op and, where relevant, the GRAPE-vs-baseline time ratio.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// and regenerate the full printed tables with cmd/grape-bench.

import (
	"testing"

	"grape/internal/bench"
	"grape/internal/workload"
)

const benchWorkers = 4

var benchScale = workload.ScaleTiny

// reportRows aggregates harness rows into benchmark metrics, keyed by system.
func reportRows(b *testing.B, rows []bench.Row) {
	b.Helper()
	var grapeSec, pregelSec float64
	for _, r := range rows {
		switch r.System {
		case bench.GRAPE:
			grapeSec += r.Seconds
			b.ReportMetric(r.CommMB, "grape-MB")
			b.ReportMetric(float64(r.Supersteps), "grape-steps")
		case bench.Pregel:
			pregelSec += r.Seconds
			b.ReportMetric(r.CommMB, "pregel-MB")
		}
	}
	if grapeSec > 0 && pregelSec > 0 {
		b.ReportMetric(pregelSec/grapeSec, "speedup-vs-pregel")
	}
}

// BenchmarkTable1_SSSPTraversal reproduces Table 1: SSSP on the road-network
// surrogate across the four systems.
func BenchmarkTable1_SSSPTraversal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(benchWorkers, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

func benchFig6(b *testing.B, query, dataset string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6(query, dataset, []int{benchWorkers}, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// Figure 6(a-c) + Figure 8(a-c): SSSP time and communication per dataset.
func BenchmarkFig6a_SSSP_Traffic(b *testing.B) { benchFig6(b, bench.QuerySSSP, workload.Traffic) }
func BenchmarkFig6b_SSSP_LiveJournal(b *testing.B) {
	benchFig6(b, bench.QuerySSSP, workload.LiveJournal)
}
func BenchmarkFig6c_SSSP_DBpedia(b *testing.B) { benchFig6(b, bench.QuerySSSP, workload.DBpedia) }

// Figure 6(d-f) + Figure 8(d-f): CC.
func BenchmarkFig6d_CC_Traffic(b *testing.B)     { benchFig6(b, bench.QueryCC, workload.Traffic) }
func BenchmarkFig6e_CC_LiveJournal(b *testing.B) { benchFig6(b, bench.QueryCC, workload.LiveJournal) }
func BenchmarkFig6f_CC_DBpedia(b *testing.B)     { benchFig6(b, bench.QueryCC, workload.DBpedia) }

// Figure 6(g-h) + Figure 8(g-h): graph simulation.
func BenchmarkFig6g_Sim_LiveJournal(b *testing.B) { benchFig6(b, bench.QuerySim, workload.LiveJournal) }
func BenchmarkFig6h_Sim_DBpedia(b *testing.B)     { benchFig6(b, bench.QuerySim, workload.DBpedia) }

// Figure 6(i-j) + Figure 8(i-j): subgraph isomorphism.
func BenchmarkFig6i_SubIso_LiveJournal(b *testing.B) {
	benchFig6(b, bench.QuerySubIso, workload.LiveJournal)
}
func BenchmarkFig6j_SubIso_DBpedia(b *testing.B) { benchFig6(b, bench.QuerySubIso, workload.DBpedia) }

// Figure 6(k-l) + Figure 8(k-l): collaborative filtering with 90% and 50%
// training sets.
func BenchmarkFig6k_CF_Train90(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6CF([]int{benchWorkers}, 0.9, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

func BenchmarkFig6l_CF_Train50(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6CF([]int{benchWorkers}, 0.5, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkFig7a_IncEval reproduces Figure 7(a): GRAPE vs GRAPE_NI for Sim.
func BenchmarkFig7a_IncEval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7a([]int{benchWorkers}, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var withInc, withoutInc float64
		for _, r := range rows {
			if r.System == bench.GRAPE {
				withInc += r.Seconds
			} else {
				withoutInc += r.Seconds
			}
		}
		if withInc > 0 {
			b.ReportMetric(withoutInc/withInc, "NI-over-inc-ratio")
		}
	}
}

// BenchmarkFig7b_OptCompat reproduces Figure 7(b): the speed-up of the
// index-optimized simulation, sequentially and under GRAPE.
func BenchmarkFig7b_OptCompat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7b([]int{benchWorkers}, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) > 0 {
			b.ReportMetric(rows[0].SequentialSpeedup, "seq-speedup")
			b.ReportMetric(rows[0].GRAPESpeedup, "grape-speedup")
		}
	}
}

// BenchmarkFig8_Comm re-runs the Figure 6 workloads solely to report the
// communication columns, making the Figure 8 numbers available as a single
// benchmark as well (each Fig6* benchmark above already reports per-dataset
// communication).
func BenchmarkFig8_Comm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6(bench.QuerySim, workload.LiveJournal, []int{benchWorkers}, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var grapeMB, pregelMB, blogelMB float64
		for _, r := range rows {
			switch r.System {
			case bench.GRAPE:
				grapeMB += r.CommMB
			case bench.Pregel:
				pregelMB += r.CommMB
			case bench.Blogel:
				blogelMB += r.CommMB
			}
		}
		b.ReportMetric(grapeMB, "grape-MB")
		b.ReportMetric(pregelMB, "pregel-MB")
		b.ReportMetric(blogelMB, "blogel-MB")
	}
}

// Figure 9(a-d): scalability on synthetic graphs.
func benchFig9(b *testing.B, query string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig9(query, benchWorkers, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

func BenchmarkFig9a_Scale_Sim(b *testing.B)    { benchFig9(b, bench.QuerySim) }
func BenchmarkFig9b_Scale_SubIso(b *testing.B) { benchFig9(b, bench.QuerySubIso) }
func BenchmarkFig9c_Scale_CC(b *testing.B)     { benchFig9(b, bench.QueryCC) }
func BenchmarkFig9d_Scale_SSSP(b *testing.B)   { benchFig9(b, bench.QuerySSSP) }

// Ablation benchmarks for the design choices called out in DESIGN.md.
func BenchmarkAblation_MessageGrouping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationMessageGrouping(benchWorkers, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 2 && rows[0].Messages > 0 {
			b.ReportMetric(float64(rows[1].Messages)/float64(rows[0].Messages), "msgs-nogroup-over-group")
		}
	}
}

func BenchmarkAblation_Partitioner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationPartitioner(benchWorkers, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			_ = r
		}
	}
}

// BenchmarkEngine_SSSPDirect measures the engine without the harness, as a
// micro-benchmark of the PIE runtime itself.
func BenchmarkEngine_SSSPDirect(b *testing.B) {
	g, err := workload.Load(workload.Traffic, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	src := g.VertexAt(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunSSSP(g, src, Options{Workers: benchWorkers}); err != nil {
			b.Fatal(err)
		}
	}
}

// Session-mode benchmarks: ns/op is the amortized per-query latency of each
// serving mode, so comparing the pair directly shows the win of partitioning
// once ("the graph is partitioned once for all queries Q posed on G",
// Section 3.1). BenchmarkSessionMode_SSSP answers every query over one
// resident session; BenchmarkPartitionPerQuery_SSSP re-partitions per query,
// which is what every query paid before sessions existed.
func sessionBenchSetup(b *testing.B) (*Graph, []VertexID) {
	b.Helper()
	g, err := workload.Load(workload.Traffic, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	srcs := workload.Sources(g, 8, 19)
	return g, srcs
}

func BenchmarkSessionMode_SSSP(b *testing.B) {
	g, srcs := sessionBenchSetup(b)
	strat, _ := PartitionStrategy("multilevel")
	s, err := NewSession(g, Options{Workers: benchWorkers, Strategy: strat})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.SSSP(srcs[i%len(srcs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionPerQuery_SSSP(b *testing.B) {
	g, srcs := sessionBenchSetup(b)
	strat, _ := PartitionStrategy("multilevel")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunSSSP(g, srcs[i%len(srcs)], Options{Workers: benchWorkers, Strategy: strat}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionAmortization runs the full harness experiment (mixed
// SSSP/CC/PageRank stream in both modes) and reports the amortized per-query
// latencies and the session speedup as custom metrics.
func BenchmarkSessionAmortization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := bench.SessionAmortization(benchWorkers, 20, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(c.SessionAmortizedMS, "session-ms/query")
		b.ReportMetric(c.PerQueryAmortizedMS, "perquery-ms/query")
		b.ReportMetric(c.Speedup, "session-speedup")
	}
}
