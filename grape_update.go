package grape

// Dynamic graphs and materialized views: the public face of the update
// subsystem. A Session is mutable — ApplyUpdates absorbs a batch of edge and
// vertex changes by rebuilding only the affected fragments — and queries can
// be materialized into live views whose answers are maintained after every
// batch, incrementally where the program's IncEval supports the change class
// and by transparent re-evaluation otherwise.

import (
	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/pie"
)

// Update is one graph change operation (edge insert/delete/reweight, vertex
// add/remove). Build them with the constructors below and apply them in
// batches with Session.ApplyUpdates.
type Update = graph.Update

// UpdateStats reports what one ApplyUpdates batch did: the epoch installed,
// how many ops took effect, how many fragments were touched, and how every
// materialized view was refreshed.
type UpdateStats = core.UpdateStats

// ViewStats reports how a materialized view has been maintained so far.
type ViewStats = core.ViewStats

// DeltaProgram is the optional interface a custom PIE program implements so
// views over it can be maintained incrementally under graph updates.
type DeltaProgram = core.DeltaProgram

// FragmentDelta describes a batch's changes to one fragment, as handed to
// DeltaProgram.EvalDelta.
type FragmentDelta = core.FragmentDelta

// EdgeInsert inserts an edge src→dst with the given weight.
func EdgeInsert(src, dst VertexID, weight float64) Update {
	return graph.AddEdgeUpdate(src, dst, weight, "")
}

// LabeledEdgeInsert inserts an edge src→dst with a weight and label.
func LabeledEdgeInsert(src, dst VertexID, weight float64, label string) Update {
	return graph.AddEdgeUpdate(src, dst, weight, label)
}

// EdgeDelete removes every edge between src and dst (both orientations for
// undirected graphs).
func EdgeDelete(src, dst VertexID) Update { return graph.RemoveEdgeUpdate(src, dst) }

// EdgeReweight sets the weight of the edges between src and dst.
func EdgeReweight(src, dst VertexID, weight float64) Update {
	return graph.ReweightEdgeUpdate(src, dst, weight)
}

// VertexAdd adds a vertex (a no-op label refresh when it already exists).
func VertexAdd(id VertexID, label string) Update { return graph.AddVertexUpdate(id, label) }

// VertexRemove removes a vertex and every edge incident to it.
func VertexRemove(id VertexID) Update { return graph.RemoveVertexUpdate(id) }

// ApplyUpdates absorbs a batch of graph updates into the session: each op is
// routed to the owning fragment, only the affected fragments are rebuilt,
// and every materialized view is refreshed before the call returns. Queries
// in flight keep reading the previous epoch (snapshot consistency); later
// queries see the updated graph.
//
// On a distributed session the rebuilt fragments are shipped to the worker
// processes as a new epoch before it is installed, and view maintenance
// runs on the workers' retained state — same semantics, either transport.
func (s *Session) ApplyUpdates(batch []Update) (*UpdateStats, error) {
	return s.s.ApplyUpdates(batch)
}

// Epoch returns the session's current epoch — the number of update batches
// installed so far.
func (s *Session) Epoch() int64 { return s.s.Epoch() }

// Updates reports how many update batches the session has absorbed.
func (s *Session) Updates() int64 { return s.s.Updates() }

// View is a materialized query result kept fresh across graph updates. It is
// returned by Session.Materialize; the typed SSSPView/CCView wrappers are
// usually more convenient.
type View struct {
	v *core.View
}

// Result returns the view's current answer (the type depends on the
// program) and the maintenance error of the last batch, if any.
func (v *View) Result() (any, error) { return v.v.Result() }

// Stats returns the view's maintenance counters.
func (v *View) Stats() ViewStats { return v.v.Stats() }

// Name returns the name of the program the view materializes.
func (v *View) Name() string { return v.v.Name() }

// Close stops maintaining the view; its last result stays readable.
func (v *View) Close() error { return v.v.Close() }

// Materialize evaluates an arbitrary PIE program once and keeps its answer
// fresh across updates. Programs implementing DeltaProgram are maintained
// incrementally where possible; others are transparently re-evaluated after
// each batch.
func (s *Session) Materialize(prog Program, query any) (*View, error) {
	v, err := s.s.Materialize(query, prog)
	if err != nil {
		return nil, err
	}
	return &View{v: v}, nil
}

// SSSPView is a materialized single-source shortest-path result.
type SSSPView struct {
	View
	source VertexID
}

// MaterializeSSSP materializes single-source shortest paths from source.
// Edge inserts, weight decreases and vertex adds are absorbed incrementally
// (distances only shrink, propagated by the bounded Ramalingam–Reps
// IncEval); deletions and weight increases trigger a re-evaluation.
func (s *Session) MaterializeSSSP(source VertexID) (*SSSPView, error) {
	v, err := s.s.Materialize(source, pie.SSSP{})
	if err != nil {
		return nil, err
	}
	return &SSSPView{View: View{v: v}, source: source}, nil
}

// Source returns the query's source vertex.
func (v *SSSPView) Source() VertexID { return v.source }

// Distances returns the current distance of every vertex (+Inf when
// unreachable) as of the last installed epoch.
func (v *SSSPView) Distances() (map[VertexID]float64, error) {
	out, err := v.v.Result()
	if err != nil {
		return nil, err
	}
	return out.(map[VertexID]float64), nil
}

// CCView is a materialized connected-components result.
type CCView struct {
	View
}

// MaterializeCC materializes connected components. Edge and vertex inserts
// are absorbed incrementally (components only merge); deletions trigger a
// re-evaluation because they can split components.
func (s *Session) MaterializeCC() (*CCView, error) {
	v, err := s.s.Materialize(nil, pie.CC{})
	if err != nil {
		return nil, err
	}
	return &CCView{View: View{v: v}}, nil
}

// Components returns the component identifier (smallest member vertex ID) of
// every vertex as of the last installed epoch.
func (v *CCView) Components() (map[VertexID]VertexID, error) {
	out, err := v.v.Result()
	if err != nil {
		return nil, err
	}
	return out.(map[VertexID]VertexID), nil
}
