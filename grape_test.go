package grape

import (
	"bytes"
	"math"
	"testing"
)

func buildSample() *Graph {
	b := NewGraphBuilder(true)
	b.AddVertex(1, "user")
	b.AddVertex(2, "user")
	b.AddVertex(3, "user")
	b.AddEdge(1, 2, 1, "")
	b.AddEdge(2, 3, 2, "")
	b.AddEdge(1, 3, 10, "")
	return b.Build()
}

func TestPublicSSSPAndCC(t *testing.T) {
	g := buildSample()
	dist, stats, err := RunSSSP(g, 1, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dist[3] != 3 || dist[2] != 1 || dist[1] != 0 {
		t.Fatalf("distances = %v", dist)
	}
	if stats == nil || stats.Supersteps == 0 {
		t.Fatalf("missing stats")
	}
	cc, _, err := RunCC(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v, cid := range cc {
		if cid != 1 {
			t.Fatalf("cid(%d) = %d, want 1", v, cid)
		}
	}
}

func TestPublicSimAndSubIso(t *testing.T) {
	gb := NewGraphBuilder(true)
	gb.AddVertex(1, "A")
	gb.AddVertex(2, "B")
	gb.AddVertex(3, "B")
	gb.AddEdge(1, 2, 1, "")
	gb.AddEdge(1, 3, 1, "")
	g := gb.Build()

	pb := NewGraphBuilder(true)
	pb.AddVertex(0, "A")
	pb.AddVertex(1, "B")
	pb.AddEdge(0, 1, 1, "")
	pattern := pb.Build()

	sim, _, err := RunSim(g, pattern, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sim[0][1] || !sim[1][2] || !sim[1][3] {
		t.Fatalf("sim = %v", sim)
	}
	matches, _, err := RunSubIso(g, pattern, 0, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %v", matches)
	}
}

func TestPublicCFAndPageRank(t *testing.T) {
	b := NewGraphBuilder(true)
	for u := VertexID(0); u < 20; u++ {
		b.AddVertex(u, "user")
	}
	for p := VertexID(100); p < 105; p++ {
		b.AddVertex(p, "product")
	}
	for u := VertexID(0); u < 20; u++ {
		b.AddEdge(u, 100+(u%5), float64(1+u%5), "rated")
	}
	g := b.Build()
	model, _, err := RunCF(g, DefaultCFQuery(0.9), Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Factors) == 0 || model.TrainingRMSE <= 0 {
		t.Fatalf("model = %+v", model)
	}

	ranks, _, err := RunPageRank(buildSample(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, r := range ranks {
		total += r
	}
	if math.Abs(total-3) > 1e-6 {
		t.Fatalf("ranks sum to %v", total)
	}
}

func TestPublicReadGraphAndStrategies(t *testing.T) {
	src := "graph directed\nv 1 a\nv 2 b\ne 1 2 3.5 x\n"
	g, err := ReadGraph(bytes.NewBufferString(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("parsed %v", g)
	}
	for _, name := range []string{"hash", "multilevel", "ldg", "range", "vertexcut"} {
		if _, ok := PartitionStrategy(name); !ok {
			t.Fatalf("strategy %q missing", name)
		}
	}
	if _, ok := PartitionStrategy("metis3"); ok {
		t.Fatalf("unknown strategy should not resolve")
	}
	// Run with an explicit strategy through the generic Run helper.
	strat, _ := PartitionStrategy("multilevel")
	dist, _, err := RunSSSP(buildSample(), 1, Options{Workers: 2, Strategy: strat, Parallelism: 1})
	if err != nil || dist[3] != 3 {
		t.Fatalf("explicit strategy run failed: %v %v", dist, err)
	}
}
