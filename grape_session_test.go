package grape

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"grape/internal/graphgen"
	"grape/internal/mpi"
)

func sessionTestGraph() *Graph {
	// An undirected grid road network: every source reaches every vertex and
	// queries take several supersteps across fragments.
	return graphgen.RoadNetwork(10, 10, graphgen.Config{Seed: 7})
}

// TestSessionConcurrentMixedQueries fires a mixed SSSP/CC/PageRank workload
// in parallel against one Session and asserts every result matches a fresh
// single-query run. With -race this is the interference-freedom proof for
// the session architecture at the public API level.
func TestSessionConcurrentMixedQueries(t *testing.T) {
	g := sessionTestGraph()
	opts := Options{Workers: 4}

	// Reference answers from fresh partition-per-query runs.
	wantCC, _, err := RunCC(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantPR, _, err := RunPageRank(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]VertexID, 6)
	wantDist := make([]map[VertexID]float64, len(sources))
	for i := range sources {
		sources[i] = g.VertexAt((i * 17) % g.NumVertices())
		wantDist[i], _, err = RunSSSP(g, sources[i], opts)
		if err != nil {
			t.Fatal(err)
		}
	}

	s, err := NewSession(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const rounds = 2
	total := rounds * (len(sources) + 2)
	errs := make([]error, 0, total)
	var mu sync.Mutex
	fail := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for i := range sources {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				dist, stats, err := s.SSSP(sources[i])
				if err != nil {
					fail(fmt.Errorf("sssp(%d): %w", sources[i], err))
					return
				}
				if stats == nil || stats.Supersteps == 0 || stats.Elapsed <= 0 {
					fail(fmt.Errorf("sssp(%d): missing per-query stats", sources[i]))
					return
				}
				for v, d := range wantDist[i] {
					if dist[v] != d && !(math.IsInf(dist[v], 1) && math.IsInf(d, 1)) {
						fail(fmt.Errorf("sssp(%d): dist(%d) = %v, want %v", sources[i], v, dist[v], d))
						return
					}
				}
			}(i)
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			cc, _, err := s.CC()
			if err != nil {
				fail(fmt.Errorf("cc: %w", err))
				return
			}
			for v, cid := range wantCC {
				if cc[v] != cid {
					fail(fmt.Errorf("cc: component(%d) = %d, want %d", v, cc[v], cid))
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			pr, _, err := s.PageRank()
			if err != nil {
				fail(fmt.Errorf("pagerank: %w", err))
				return
			}
			for v, r := range wantPR {
				if math.Abs(pr[v]-r) > 1e-9 {
					fail(fmt.Errorf("pagerank: rank(%d) = %v, want %v", v, pr[v], r))
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		t.Error(err)
	}
	if got := s.Queries(); got != int64(total) {
		t.Fatalf("session served %d queries, want %d", got, total)
	}
}

// degreeProgram is a caller-supplied PIE program: it counts, for each owned
// vertex, its out-degree, and Assemble sums them — i.e. it computes |E| (per
// direction) without any cross-fragment messages.
type degreeProgram struct{}

func (degreeProgram) Name() string { return "degree" }

func (degreeProgram) PEval(ctx *Context) error {
	total := 0
	g := ctx.Fragment.Graph
	for _, v := range ctx.Fragment.Local {
		total += len(g.OutEdges(g.IndexOf(v)))
	}
	ctx.State = total
	return nil
}

func (degreeProgram) IncEval(ctx *Context, msgs []mpi.Update) error { return nil }

func (degreeProgram) Assemble(q Query, ctxs []*Context) (any, error) {
	total := 0
	for _, ctx := range ctxs {
		total += ctx.State.(int)
	}
	return total, nil
}

func (degreeProgram) Aggregate(existing, incoming mpi.Update) mpi.Update { return existing }

// TestSessionPatternAndCustomProgram covers the remaining session methods:
// Sim, SubIso and Run with a caller-supplied PIE program.
func TestSessionPatternAndCustomProgram(t *testing.T) {
	gb := NewGraphBuilder(true)
	gb.AddVertex(1, "A")
	gb.AddVertex(2, "B")
	gb.AddVertex(3, "B")
	gb.AddEdge(1, 2, 1, "")
	gb.AddEdge(1, 3, 1, "")
	g := gb.Build()

	pb := NewGraphBuilder(true)
	pb.AddVertex(0, "A")
	pb.AddVertex(1, "B")
	pb.AddEdge(0, 1, 1, "")
	pattern := pb.Build()

	s, err := NewSession(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sim, _, err := s.Sim(pattern)
	if err != nil {
		t.Fatal(err)
	}
	if !sim[0][1] || !sim[1][2] || !sim[1][3] {
		t.Fatalf("sim = %v", sim)
	}
	matches, _, err := s.SubIso(pattern, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %v", matches)
	}

	// A caller-supplied PIE program through Session.Run (prog first, query
	// second — unlike the package-level Run).
	res, err := s.Run(degreeProgram{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Output.(int); got != g.NumEdges() {
		t.Fatalf("custom program counted %d edges, want %d", got, g.NumEdges())
	}
	if res.Stats == nil || res.Stats.Query != "degree" {
		t.Fatalf("custom program stats = %+v", res.Stats)
	}
}
