package grape

// Fault-tolerance acceptance tests: a TCP cluster with Options.Recovery set
// must answer queries correctly — byte-identically for SSSP and CC — after a
// worker process is killed mid-query, after a kill between queries, and after
// an update batch whose delta ship hit the dead process. The elastic half is
// covered too: a worker that joins mid-session receives fragments through
// rebalancing and can take over the whole graph when every founding worker
// dies.
//
// Workers run as in-process goroutines, so a "kill" cannot be a signal;
// instead each worker dials the coordinator through a killableProxy and a
// kill severs every TCP connection the proxy carried — exactly what the
// coordinator observes when a worker process dies.

import (
	"errors"
	"io"
	stdnet "net"
	"reflect"
	"sync"
	"testing"
	"time"

	"grape/internal/obs"
	"grape/internal/pie"
)

// killableProxy forwards TCP connections to a backend address; Kill severs
// every connection it carried (and refuses new ones), which the far side
// observes as an abrupt connection loss — a worker-process crash.
type killableProxy struct {
	ln stdnet.Listener

	mu      sync.Mutex
	backend string
	conns   []stdnet.Conn
	killed  bool
}

func newKillableProxy(t *testing.T) *killableProxy {
	t.Helper()
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	p := &killableProxy{ln: ln}
	go p.accept()
	t.Cleanup(p.Kill)
	return p
}

func (p *killableProxy) Addr() string { return p.ln.Addr().String() }

func (p *killableProxy) SetBackend(addr string) {
	p.mu.Lock()
	p.backend = addr
	p.mu.Unlock()
}

func (p *killableProxy) accept() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		backend, killed := p.backend, p.killed
		p.mu.Unlock()
		if killed {
			conn.Close()
			continue
		}
		up, err := stdnet.Dial("tcp", backend)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		if p.killed {
			p.mu.Unlock()
			conn.Close()
			up.Close()
			continue
		}
		p.conns = append(p.conns, conn, up)
		p.mu.Unlock()
		go func() { io.Copy(up, conn); up.Close() }()
		go func() { io.Copy(conn, up); conn.Close() }()
	}
}

// Kill severs every proxied connection and refuses new ones. Idempotent.
func (p *killableProxy) Kill() {
	p.mu.Lock()
	p.killed = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// recoveryCluster is a distributed session whose worker processes each dial
// the coordinator through their own killable proxy.
type recoveryCluster struct {
	s       *Session
	addr    string // the coordinator's real address, for joiners
	proxies []*killableProxy
	wg      sync.WaitGroup
	errs    []error
}

func startRecoveryCluster(t *testing.T, g *Graph, workers, procs int, rec *Recovery) *recoveryCluster {
	t.Helper()
	rc := &recoveryCluster{
		proxies: make([]*killableProxy, procs),
		errs:    make([]error, procs),
	}
	for i := range rc.proxies {
		rc.proxies[i] = newKillableProxy(t)
	}
	addrCh := make(chan string, 1)
	opts := Options{
		Workers:  workers,
		Recovery: rec,
		Distributed: &Distributed{
			Listen:           "127.0.0.1:0",
			WorkerProcs:      procs,
			HandshakeTimeout: 30 * time.Second,
			OnListen: func(addr string) {
				for _, p := range rc.proxies {
					p.SetBackend(addr)
				}
				addrCh <- addr
			},
		},
	}
	for i := 0; i < procs; i++ {
		rc.wg.Add(1)
		go func(i int) {
			defer rc.wg.Done()
			rc.errs[i] = ServeWorker(rc.proxies[i].Addr(), WorkerOptions{DialTimeout: 10 * time.Second})
		}(i)
	}
	s, err := NewSession(g, opts)
	if err != nil {
		t.Fatalf("NewSession(recovery cluster): %v", err)
	}
	rc.s = s
	rc.addr = <-addrCh
	return rc
}

// waitWorkers blocks until every worker goroutine exits and asserts the ones
// not listed in killed exited cleanly (killed workers exit with a connection
// error, which is their expected fate).
func (rc *recoveryCluster) waitWorkers(t *testing.T, killed ...int) {
	t.Helper()
	rc.wg.Wait()
	for i, err := range rc.errs {
		wasKilled := false
		for _, k := range killed {
			if i == k {
				wasKilled = true
			}
		}
		if !wasKilled && err != nil {
			t.Errorf("surviving worker %d exited with error: %v", i, err)
		}
	}
}

// counterValue reads an unlabeled counter from the default obs registry.
func counterValue(name string) float64 {
	for _, s := range obs.Default.Gather() {
		if s.Name == name && len(s.Labels) == 0 {
			return s.Value
		}
	}
	return 0
}

func awaitCounterAbove(t *testing.T, name string, floor float64, timeout time.Duration, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for counterValue(name) <= floor {
		if time.Now().After(deadline) {
			t.Fatalf("%s: %s still at %v after %v", what, name, counterValue(name), timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRecoveryKillMidQuery is the headline acceptance check: killing one
// worker process of a 3-process TCP cluster while a long SSSP is in flight
// must still produce the byte-identical answer of a healthy in-process run —
// the coordinator reassigns the dead process's fragments to survivors and
// restarts the run from its last checkpointed cut. A follow-up CC must be
// exact too, and across the kill at least one query must report a restart.
func TestRecoveryKillMidQuery(t *testing.T) {
	const workers, procs = 6, 3
	// A pure ring makes SSSP take ~n/2 frontier hops: hundreds of supersteps,
	// so the kill lands mid-query and several checkpoints exist before it.
	g := distributedGraph(false, 1200, 0, 11)

	local, err := NewSession(g, Options{Workers: workers})
	if err != nil {
		t.Fatalf("NewSession(local): %v", err)
	}
	defer local.Close()
	wantD, _, err := local.SSSP(0)
	if err != nil {
		t.Fatalf("local SSSP: %v", err)
	}
	wantC, _, err := local.CC()
	if err != nil {
		t.Fatalf("local CC: %v", err)
	}

	rc := startRecoveryCluster(t, g, workers, procs, &Recovery{Interval: 8})
	defer rc.waitWorkers(t, 0)
	defer rc.s.Close()

	type runRes struct {
		res *Result
		err error
	}
	done := make(chan runRes, 1)
	go func() {
		res, err := rc.s.Run(pie.SSSP{}, VertexID(0))
		done <- runRes{res, err}
	}()
	time.Sleep(100 * time.Millisecond)
	rc.proxies[0].Kill()

	var restarts int
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("SSSP across a worker kill: %v", r.err)
		}
		if got := r.res.Output.(map[VertexID]float64); !reflect.DeepEqual(got, wantD) {
			t.Fatalf("SSSP answer after mid-query kill differs from healthy run")
		}
		restarts += r.res.Restarts
	case <-time.After(60 * time.Second):
		t.Fatalf("SSSP never returned after the kill")
	}

	// Whether or not the kill landed mid-query, the next query runs against a
	// cluster that lost a process — it must answer exactly, and by now at
	// least one of the two runs must have gone through a restart.
	res, err := rc.s.Run(pie.SSSP{}, VertexID(0))
	if err != nil {
		t.Fatalf("SSSP after recovery: %v", err)
	}
	if got := res.Output.(map[VertexID]float64); !reflect.DeepEqual(got, wantD) {
		t.Fatalf("post-recovery SSSP differs from healthy run")
	}
	restarts += res.Restarts
	if restarts == 0 {
		t.Fatalf("no query restarted across a worker kill; recovery path not exercised")
	}

	gotC, _, err := rc.s.CC()
	if err != nil {
		t.Fatalf("CC after recovery: %v", err)
	}
	if !reflect.DeepEqual(gotC, wantC) {
		t.Fatalf("post-recovery CC differs from healthy run")
	}
}

// TestRecoveryKillThenUpdate kills a worker while the cluster is idle and
// then applies an update batch first: the delta ship hits the dead process,
// recovery re-homes its fragments at the new epoch, the batch installs, and
// both a materialized CC view (forced to a full recompute — its worker-side
// state died with the process) and fresh queries agree with an in-process
// session absorbing the same batch.
func TestRecoveryKillThenUpdate(t *testing.T) {
	const workers, procs = 4, 2
	g := distributedGraph(false, 200, 300, 23)

	local, err := NewSession(g, Options{Workers: workers})
	if err != nil {
		t.Fatalf("NewSession(local): %v", err)
	}
	defer local.Close()
	localCC, err := local.MaterializeCC()
	if err != nil {
		t.Fatalf("local MaterializeCC: %v", err)
	}

	rc := startRecoveryCluster(t, g, workers, procs, &Recovery{})
	defer rc.waitWorkers(t, 1)
	defer rc.s.Close()
	distCC, err := rc.s.MaterializeCC()
	if err != nil {
		t.Fatalf("distributed MaterializeCC: %v", err)
	}

	rc.proxies[1].Kill()

	batch := []Update{
		EdgeInsert(3, 177, 0.25),
		EdgeDelete(5, 6),
		VertexAdd(1000, ""),
		EdgeInsert(1000, 50, 1.5),
	}
	if _, err := local.ApplyUpdates(batch); err != nil {
		t.Fatalf("local ApplyUpdates: %v", err)
	}
	if _, err := rc.s.ApplyUpdates(batch); err != nil {
		t.Fatalf("ApplyUpdates across a dead worker: %v", err)
	}
	if got, want := rc.s.Epoch(), local.Epoch(); got != want {
		t.Fatalf("epoch = %d after recovered update, want %d", got, want)
	}

	wantC, err := localCC.Components()
	if err != nil {
		t.Fatalf("local CC view: %v", err)
	}
	gotC, err := distCC.Components()
	if err != nil {
		t.Fatalf("distributed CC view after recovered update: %v", err)
	}
	if !reflect.DeepEqual(gotC, wantC) {
		t.Fatalf("CC view differs from in-process after a recovered update")
	}

	wantD, _, err := local.SSSP(0)
	if err != nil {
		t.Fatalf("local SSSP: %v", err)
	}
	gotD, _, err := rc.s.SSSP(0)
	if err != nil {
		t.Fatalf("distributed SSSP after recovered update: %v", err)
	}
	if !reflect.DeepEqual(gotD, wantD) {
		t.Fatalf("SSSP differs from in-process after a recovered update")
	}

	// A second batch exercises the ordinary (post-recovery) update path.
	batch2 := []Update{EdgeInsert(10, 90, 0.75)}
	if _, err := local.ApplyUpdates(batch2); err != nil {
		t.Fatalf("local second batch: %v", err)
	}
	if _, err := rc.s.ApplyUpdates(batch2); err != nil {
		t.Fatalf("second batch after recovery: %v", err)
	}
	wantC, _ = localCC.Components()
	gotC, err = distCC.Components()
	if err != nil {
		t.Fatalf("CC view after second batch: %v", err)
	}
	if !reflect.DeepEqual(gotC, wantC) {
		t.Fatalf("CC view differs after the post-recovery batch")
	}
}

// TestRecoveryJoinTakeover covers the elastic half end to end through the
// facade: a worker started with Join: true enters the running cluster and
// receives fragments through rebalancing; when every founding worker then
// dies, recovery re-homes the whole graph onto the joiner and queries still
// answer byte-identically.
func TestRecoveryJoinTakeover(t *testing.T) {
	const workers, procs = 4, 2
	g := distributedGraph(false, 250, 400, 31)

	local, err := NewSession(g, Options{Workers: workers})
	if err != nil {
		t.Fatalf("NewSession(local): %v", err)
	}
	defer local.Close()
	wantD, _, err := local.SSSP(0)
	if err != nil {
		t.Fatalf("local SSSP: %v", err)
	}
	wantC, _, err := local.CC()
	if err != nil {
		t.Fatalf("local CC: %v", err)
	}

	rc := startRecoveryCluster(t, g, workers, procs, &Recovery{})
	defer rc.waitWorkers(t, 0, 1)
	defer rc.s.Close()

	gotD, _, err := rc.s.SSSP(0)
	if err != nil {
		t.Fatalf("healthy distributed SSSP: %v", err)
	}
	if !reflect.DeepEqual(gotD, wantD) {
		t.Fatalf("healthy distributed SSSP differs from in-process")
	}

	// Join a third worker mid-session and wait until rebalancing has moved at
	// least one fragment onto it (observable as the moved-fragments counter
	// advancing — the join handler runs the rebalance synchronously, so moves
	// imply the join completed too).
	movedFloor := counterValue("grape_net_fragments_moved_total")
	joinErr := make(chan error, 1)
	go func() {
		joinErr <- ServeWorker(rc.addr, WorkerOptions{DialTimeout: 10 * time.Second, Join: true})
	}()
	awaitCounterAbove(t, "grape_net_fragments_moved_total", movedFloor, 15*time.Second, "join rebalance")

	// The rebalanced cluster still answers exactly.
	gotD, _, err = rc.s.SSSP(0)
	if err != nil {
		t.Fatalf("SSSP after join: %v", err)
	}
	if !reflect.DeepEqual(gotD, wantD) {
		t.Fatalf("SSSP after join differs from in-process")
	}

	// Kill both founding workers: every fragment they still host must be
	// re-homed onto the joiner, which becomes the whole cluster.
	rc.proxies[0].Kill()
	rc.proxies[1].Kill()
	res, err := rc.s.Run(pie.SSSP{}, VertexID(0))
	if err != nil {
		t.Fatalf("SSSP after founding workers died: %v", err)
	}
	if got := res.Output.(map[VertexID]float64); !reflect.DeepEqual(got, wantD) {
		t.Fatalf("SSSP on the joiner-only cluster differs from in-process")
	}
	if res.Restarts == 0 {
		t.Fatalf("takeover query reported no restarts")
	}
	gotC, _, err := rc.s.CC()
	if err != nil {
		t.Fatalf("CC on the joiner-only cluster: %v", err)
	}
	if !reflect.DeepEqual(gotC, wantC) {
		t.Fatalf("CC on the joiner-only cluster differs from in-process")
	}

	// Closing the session shuts the joiner down cleanly.
	if err := rc.s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-joinErr:
		if err != nil {
			t.Fatalf("joined worker exited with error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("joined worker never exited after Close")
	}
}

// TestRecoveryZeroValueIsFailStop: without Options.Recovery a worker death
// keeps the historical fail-stop contract — the query errors with a typed
// *WorkerLostError naming the process's fragments, and nothing is retried.
func TestRecoveryZeroValueIsFailStop(t *testing.T) {
	const workers, procs = 4, 2
	g := distributedGraph(false, 600, 0, 3)

	rc := startRecoveryCluster(t, g, workers, procs, nil)
	defer rc.waitWorkers(t, 0)
	defer rc.s.Close()

	done := make(chan error, 1)
	go func() {
		_, _, err := rc.s.SSSP(0)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	rc.proxies[0].Kill()

	select {
	case err := <-done:
		if err == nil {
			// The query beat the kill; the next one must hit the dead conn.
			if _, _, err = rc.s.SSSP(0); err == nil {
				t.Fatalf("query on a fail-stop cluster with a dead worker succeeded")
			}
		}
		var lost *WorkerLostError
		if !errors.As(err, &lost) {
			t.Fatalf("fail-stop error is not a *WorkerLostError: %v", err)
		}
		if len(lost.Fragments) == 0 {
			t.Fatalf("WorkerLostError carries no fragments: %+v", lost)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("fail-stop query never returned after the kill")
	}
}
