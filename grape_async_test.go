package grape

import (
	"errors"
	"testing"
)

// testModeGraph builds a ring-with-chords graph large enough to spread over
// several fragments and force multiple evaluation rounds.
func testModeGraph() *Graph {
	b := NewGraphBuilder(false)
	const n = 48
	for i := int64(0); i < n; i++ {
		b.AddVertex(VertexID(i), "user")
		b.AddEdge(VertexID(i), VertexID((i+1)%n), 1+float64(i%5), "")
		if i%4 == 0 {
			b.AddEdge(VertexID(i), VertexID((i+11)%n), 2, "")
		}
	}
	return b.Build()
}

// TestWithModeAsync checks the facade-level plane override: the async handle
// shares the resident session, answers match BSP exactly for SSSP/CC, and
// BSP-only programs are rejected with the exported error.
func TestWithModeAsync(t *testing.T) {
	g := testModeGraph()
	s, err := NewSession(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.ExecMode() != BSP {
		t.Fatalf("default mode = %v, want BSP", s.ExecMode())
	}
	async := s.WithMode(Async)
	if async.ExecMode() != Async {
		t.Fatalf("WithMode(Async).ExecMode() = %v", async.ExecMode())
	}

	src := g.VertexAt(0)
	dist, bspStats, err := s.SSSP(src)
	if err != nil {
		t.Fatal(err)
	}
	adist, asyncStats, err := async.SSSP(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(adist) != len(dist) {
		t.Fatalf("async returned %d distances, bsp %d", len(adist), len(dist))
	}
	for v, d := range dist {
		if adist[v] != d {
			t.Fatalf("dist(%d): async %v, bsp %v", v, adist[v], d)
		}
	}
	if bspStats.Mode != "bsp" || asyncStats.Mode != "async" {
		t.Fatalf("stats modes = %q/%q", bspStats.Mode, asyncStats.Mode)
	}

	cc, _, err := s.CC()
	if err != nil {
		t.Fatal(err)
	}
	acc, _, err := async.CC()
	if err != nil {
		t.Fatal(err)
	}
	for v, cid := range cc {
		if acc[v] != cid {
			t.Fatalf("cc(%d): async %v, bsp %v", v, acc[v], cid)
		}
	}

	// Both handles count into the same session.
	if q := s.Queries(); q != 4 {
		t.Fatalf("session served %d queries, want 4", q)
	}

	// BSP-only programs refuse the async plane.
	pattern := NewGraphBuilder(true)
	pattern.AddVertex(1, "user")
	if _, _, err := async.Sim(pattern.Build()); !errors.Is(err, ErrAsyncUnsupported) {
		t.Fatalf("async Sim err = %v, want ErrAsyncUnsupported", err)
	}
}

// TestSessionModeOption checks Options.Mode sets the session default plane.
func TestSessionModeOption(t *testing.T) {
	g := testModeGraph()
	s, err := NewSession(g, Options{Workers: 3, Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, stats, err := s.SSSP(g.VertexAt(1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mode != "async" {
		t.Fatalf("Options.Mode not honored: stats.Mode = %q", stats.Mode)
	}
	// And back to BSP per query.
	_, stats, err = s.WithMode(BSP).SSSP(g.VertexAt(1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mode != "bsp" {
		t.Fatalf("WithMode(BSP) not honored: stats.Mode = %q", stats.Mode)
	}
}
