package grape

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// scrape fetches one path from the session's debug endpoint.
func scrape(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %q", path, resp.StatusCode, body)
	}
	return string(body)
}

// TestDistributedObservability is the observability acceptance check: a
// 3-process TCP cluster serving a coordinator /metrics endpoint whose
// families span the query plane, the wire, and — via the stats call — every
// worker process, with values that move across a query and an update batch;
// plus a per-query trace whose spans cover all worker processes.
func TestDistributedObservability(t *testing.T) {
	const workers, procs = 6, 3
	g := distributedGraph(false, 200, 300, 31)
	s, waitWorkers := startCluster(t, g, workers, procs, BSP, func(o *Options) {
		o.DebugListen = "127.0.0.1:0"
	})
	defer waitWorkers()
	defer s.Close()

	addr := s.DebugAddr()
	if addr == "" {
		t.Fatalf("DebugAddr is empty with DebugListen set")
	}
	if got := scrape(t, addr, "/healthz"); !strings.Contains(got, "ok") {
		t.Fatalf("/healthz = %q, want ok", got)
	}

	_, stats, err := s.SSSP(0)
	if err != nil {
		t.Fatalf("SSSP: %v", err)
	}

	body := scrape(t, addr, "/metrics")
	for _, family := range []string{
		// Query plane (coordinator-side engine counters).
		`grape_queries_started_total{mode="bsp"}`,
		`grape_queries_finished_total{mode="bsp"}`,
		"grape_query_seconds_bucket",
		"grape_supersteps_total",
		"grape_superstep_seconds_bucket",
		"grape_barrier_wait_seconds_total",
		// Communication totals (flushed per query).
		"grape_comm_messages_sent_total",
		"grape_comm_bytes_sent_total",
		// Wire plane (coordinator side of the TCP transport).
		"grape_net_frames_sent_total",
		"grape_net_bytes_read_total",
		"grape_net_reply_bytes_pooled_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
	// Per-worker counters from every worker process, relabeled with the
	// process id by the stats-call collector.
	for proc := 0; proc < procs; proc++ {
		probe := fmt.Sprintf(`grape_worker_calls_total{kind="peval",proc="%d"}`, proc)
		if !strings.Contains(body, probe) {
			t.Errorf("/metrics missing per-worker counter %s", probe)
		}
	}

	// Values move: an update batch bumps the epoch counters on both sides of
	// the wire. The coordinator counter is process-global (other tests may
	// have installed epochs already), so compare before/after.
	before := metricValue(t, body, "grape_update_epochs_installed_total")
	if _, err := s.ApplyUpdates([]Update{EdgeInsert(1, 2, 0.5)}); err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	body = scrape(t, addr, "/metrics")
	if after := metricValue(t, body, "grape_update_epochs_installed_total"); after != before+1 {
		t.Fatalf("grape_update_epochs_installed_total went %v -> %v across one batch, want +1", before, after)
	}
	if !strings.Contains(body, `grape_worker_epochs_installed_total{proc="2"} 1`) {
		t.Fatalf("worker process 2 did not report its installed epoch:\n%s", grepLines(body, "epochs"))
	}

	// The query's trace covers every fragment rank — and therefore every
	// worker process — with both the worker-side evaluation spans and the
	// coordinator's rpc round-trips.
	tr := stats.Trace()
	if tr == nil {
		t.Fatalf("Stats.Trace() is nil on an instrumented run")
	}
	ranks := map[int]bool{}
	rpc := false
	for _, sp := range tr.Spans() {
		if sp.Worker >= 0 {
			ranks[sp.Worker] = true
		}
		if strings.HasPrefix(sp.Name, "rpc:") {
			rpc = true
		}
	}
	for w := 0; w < workers; w++ {
		if !ranks[w] {
			t.Errorf("trace has no spans for worker %d", w)
		}
	}
	if !rpc {
		t.Errorf("trace has no rpc round-trip spans")
	}
	raw, err := tr.ChromeJSON()
	if err != nil {
		t.Fatalf("ChromeJSON: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace JSON does not decode: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatalf("trace JSON has no events")
	}

	// The pprof mux is mounted on the same endpoint.
	if got := scrape(t, addr, "/debug/pprof/cmdline"); got == "" {
		t.Fatalf("/debug/pprof/cmdline returned nothing")
	}
}

// metricValue extracts the value of an unlabeled sample from a Prometheus
// text exposition body.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		var v float64
		if _, err := fmt.Sscanf(line, name+" %g", &v); err == nil {
			return v
		}
	}
	t.Fatalf("/metrics has no sample %s", name)
	return 0
}

// grepLines returns the lines of s containing substr, for failure messages.
func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestAsyncRecordsPerStep: the async plane now keys communication to
// evaluation rounds, so PerStep is populated for async runs too — the same
// per-step profile BSP gets from its supersteps.
func TestAsyncRecordsPerStep(t *testing.T) {
	g := distributedGraph(false, 120, 200, 8)
	s, err := NewSession(g, Options{Workers: 4, Mode: Async})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()
	_, stats, err := s.SSSP(0)
	if err != nil {
		t.Fatalf("SSSP: %v", err)
	}
	steps := stats.PerStep()
	if len(steps) == 0 {
		t.Fatalf("async run recorded no per-step stats")
	}
	var msgs int64
	for i, st := range steps {
		if st.Step != i+1 {
			t.Fatalf("step %d numbered %d", i, st.Step)
		}
		msgs += st.Messages
	}
	if msgs == 0 {
		t.Fatalf("async per-step stats attribute no messages")
	}
	if msgs != stats.MessagesSent {
		t.Fatalf("per-step messages sum to %d, total is %d", msgs, stats.MessagesSent)
	}
}

// TestNoMetricsSuppressesObservability: NoMetrics runs must not record
// traces (the overhead experiment depends on this being a real off switch).
func TestNoMetricsSuppressesObservability(t *testing.T) {
	g := distributedGraph(false, 80, 100, 4)
	s, err := NewSession(g, Options{Workers: 3, NoMetrics: true})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()
	_, stats, err := s.SSSP(0)
	if err != nil {
		t.Fatalf("SSSP: %v", err)
	}
	if tr := stats.Trace(); tr != nil {
		t.Fatalf("NoMetrics run still carries a trace with %d spans", len(tr.Spans()))
	}
	// The per-query stats themselves keep working — NoMetrics only turns off
	// the cluster-wide counters and the trace recorder.
	if stats.MessagesSent == 0 || stats.Supersteps == 0 {
		t.Fatalf("NoMetrics run lost its per-query stats: %+v", stats)
	}
}
