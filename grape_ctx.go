package grape

// Context-aware session methods. Every query and update entry point has a
// Ctx variant that honors cancellation and deadlines: a canceled context
// aborts the run at its next superstep (BSP) or round (async) boundary —
// releasing the query's epoch pin and any remote per-query state — and the
// context's error is returned. The plain methods delegate here with
// context.Background().
//
// On distributed sessions with Options.Recovery set, the Ctx variants are
// also where fault tolerance lives: a run that failed because a worker
// process died is restarted (from the last checkpointed cut when one exists)
// after the session reassigns the dead process's fragments — see Recovery.

import (
	"context"

	"grape/internal/pie"
)

// RunCtx is Run bound to a context.
func (s *Session) RunCtx(ctx context.Context, prog Program, query any) (*Result, error) {
	return s.s.RunModeCtx(ctx, query, prog, s.mode)
}

// SSSPCtx is SSSP bound to a context.
func (s *Session) SSSPCtx(ctx context.Context, source VertexID) (map[VertexID]float64, *Stats, error) {
	res, err := s.s.RunModeCtx(ctx, source, pie.SSSP{}, s.mode)
	if err != nil {
		return nil, nil, err
	}
	return res.Output.(map[VertexID]float64), res.Stats, nil
}

// CCCtx is CC bound to a context.
func (s *Session) CCCtx(ctx context.Context) (map[VertexID]VertexID, *Stats, error) {
	res, err := s.s.RunModeCtx(ctx, nil, pie.CC{}, s.mode)
	if err != nil {
		return nil, nil, err
	}
	return res.Output.(map[VertexID]VertexID), res.Stats, nil
}

// SimCtx is Sim bound to a context.
func (s *Session) SimCtx(ctx context.Context, pattern *Graph) (SimResult, *Stats, error) {
	res, err := s.s.RunModeCtx(ctx, pattern, pie.Sim{}, s.mode)
	if err != nil {
		return nil, nil, err
	}
	return res.Output.(SimResult), res.Stats, nil
}

// SubIsoCtx is SubIso bound to a context.
func (s *Session) SubIsoCtx(ctx context.Context, pattern *Graph, maxMatches int) ([]Match, *Stats, error) {
	res, err := s.s.RunModeCtx(ctx, pattern, pie.SubIso{MaxMatches: maxMatches}, s.mode)
	if err != nil {
		return nil, nil, err
	}
	return res.Output.([]Match), res.Stats, nil
}

// CFCtx is CF bound to a context.
func (s *Session) CFCtx(ctx context.Context, query CFQuery) (CFModel, *Stats, error) {
	res, err := s.s.RunModeCtx(ctx, query, pie.CF{}, s.mode)
	if err != nil {
		return CFModel{}, nil, err
	}
	return res.Output.(CFModel), res.Stats, nil
}

// PageRankCtx is PageRank bound to a context.
func (s *Session) PageRankCtx(ctx context.Context) (map[VertexID]float64, *Stats, error) {
	res, err := s.s.RunModeCtx(ctx, pie.DefaultPageRankQuery(), pie.PageRank{}, s.mode)
	if err != nil {
		return nil, nil, err
	}
	return res.Output.(map[VertexID]float64), res.Stats, nil
}

// ApplyUpdatesCtx is ApplyUpdates bound to a context. Cancellation is honored
// until the batch's delta ships to the worker processes; past that point the
// epoch always installs, because aborting midway would diverge the cluster.
func (s *Session) ApplyUpdatesCtx(ctx context.Context, batch []Update) (*UpdateStats, error) {
	return s.s.ApplyUpdatesCtx(ctx, batch)
}
