package grape

import (
	"math"
	"testing"

	"grape/internal/workload"
)

func TestSessionApplyUpdatesAndViews(t *testing.T) {
	b := NewGraphBuilder(false)
	// Two components: 1-2-3 and 10-11.
	b.AddEdge(1, 2, 1, "")
	b.AddEdge(2, 3, 1, "")
	b.AddEdge(10, 11, 1, "")
	g := b.Build()

	s, err := NewSession(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sssp, err := s.MaterializeSSSP(1)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := s.MaterializeCC()
	if err != nil {
		t.Fatal(err)
	}

	dist, err := sssp.Distances()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dist[10], 1) {
		t.Fatalf("initial dist[10] = %v, want +Inf", dist[10])
	}
	comps, err := cc.Components()
	if err != nil {
		t.Fatal(err)
	}
	if comps[10] != 10 || comps[1] != 1 {
		t.Fatalf("initial components: %v", comps)
	}

	// Bridge the components; both views must refresh.
	stats, err := s.ApplyUpdates([]Update{EdgeInsert(3, 10, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 || stats.ViewsMaintained != 2 || stats.Incremental != 2 {
		t.Fatalf("stats after bridge: %+v epoch=%d", stats, s.Epoch())
	}
	dist, err = sssp.Distances()
	if err != nil {
		t.Fatal(err)
	}
	if dist[10] != 4 || dist[11] != 5 {
		t.Fatalf("after bridge: dist[10]=%v dist[11]=%v", dist[10], dist[11])
	}
	comps, err = cc.Components()
	if err != nil {
		t.Fatal(err)
	}
	if comps[10] != 1 || comps[11] != 1 {
		t.Fatalf("after bridge: components %v", comps)
	}

	// Cut the bridge again: deletion falls back to recompute and answers
	// grow back.
	if _, err = s.ApplyUpdates([]Update{EdgeDelete(3, 10)}); err != nil {
		t.Fatal(err)
	}
	dist, err = sssp.Distances()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dist[10], 1) {
		t.Fatalf("after cut: dist[10] = %v, want +Inf", dist[10])
	}
	comps, err = cc.Components()
	if err != nil {
		t.Fatal(err)
	}
	if comps[10] != 10 {
		t.Fatalf("after cut: components %v", comps)
	}
	if vs := sssp.Stats(); vs.Maintenances != 2 || vs.Incremental != 1 || vs.Recomputed != 1 {
		t.Fatalf("sssp view stats: %+v", vs)
	}

	// Plain queries keep working on the updated graph.
	d2, _, err := s.SSSP(10)
	if err != nil {
		t.Fatal(err)
	}
	if d2[11] != 1 {
		t.Fatalf("query after updates: dist[11]=%v", d2[11])
	}
}

func TestSessionReplayWorkloadStream(t *testing.T) {
	g := sessionTestGraph()
	s, err := NewSession(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	source := g.VertexAt(0)
	view, err := s.MaterializeSSSP(source)
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.UpdateStream(g, workload.StreamConfig{
		Seed: 5, Batches: 15, BatchSize: 3,
		Protect: []VertexID{source},
	})
	for _, tb := range stream {
		if _, err := s.ApplyUpdates(tb.Ops); err != nil {
			t.Fatalf("batch %d: %v", tb.Seq, err)
		}
	}
	if s.Epoch() != 15 {
		t.Fatalf("epoch = %d, want 15", s.Epoch())
	}
	if _, err := view.Distances(); err != nil {
		t.Fatal(err)
	}
	if vs := view.Stats(); vs.Maintenances != 15 {
		t.Fatalf("view stats: %+v", vs)
	}
}
