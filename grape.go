// Package grape is the public facade of the GRAPE reproduction: a parallel
// engine that parallelizes sequential graph algorithms by combining partial
// evaluation and incremental computation (Fan et al., "Parallelizing
// Sequential Graph Computations", SIGMOD 2017).
//
// The package re-exports the building blocks a downstream user needs — the
// graph model, the partition strategies, the PIE programming model and the
// engine — and provides one-call helpers for the five query classes of the
// paper (SSSP, CC, Sim, SubIso, CF) plus PageRank.
//
// A minimal program:
//
//	b := grape.NewGraphBuilder(true)
//	b.AddEdge(1, 2, 1.0, "")
//	b.AddEdge(2, 3, 2.5, "")
//	g := b.Build()
//	dist, stats, err := grape.RunSSSP(g, 1, grape.Options{Workers: 4})
//
// See the examples/ directory for complete programs.
package grape

import (
	"io"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/partition"
	"grape/internal/pie"
	"grape/internal/seq"
)

// Re-exported core types. The aliases give external callers stable names for
// the engine's types without reaching into internal packages.
type (
	// Graph is an immutable directed or undirected labeled graph.
	Graph = graph.Graph
	// GraphBuilder accumulates vertices and edges.
	GraphBuilder = graph.Builder
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// Program is a PIE program (PEval, IncEval, Assemble, Aggregate).
	Program = core.Program
	// Context is the per-fragment context handed to PIE programs.
	Context = core.Context
	// EngineOptions configures the engine directly for advanced use.
	EngineOptions = core.Options
	// Result is a full engine result (output, stats, contexts).
	Result = core.Result
	// Stats reports time, supersteps and communication volume.
	Stats = metrics.Stats
	// Strategy is a graph partition strategy.
	Strategy = partition.Strategy
	// SimResult is a graph-simulation relation.
	SimResult = seq.SimResult
	// Match is one subgraph-isomorphism match.
	Match = seq.Match
	// CFModel is a trained collaborative-filtering model.
	CFModel = pie.CFModel
	// CFQuery configures collaborative filtering.
	CFQuery = pie.CFQuery
)

// NewGraphBuilder returns a builder for a directed (true) or undirected
// (false) graph.
func NewGraphBuilder(directed bool) *GraphBuilder { return graph.NewBuilder(directed) }

// ReadGraph parses a graph from the text edge-list format (see
// internal/graph's documentation; plain "src dst weight" lines also work).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// PartitionStrategy looks up a partition strategy by name: "hash", "range",
// "ldg", "multilevel" or "vertexcut". It returns false for unknown names.
func PartitionStrategy(name string) (Strategy, bool) { return partition.ByName(name) }

// Options configure the one-call helpers below.
type Options struct {
	// Workers is the number of fragments/workers (default 1).
	Workers int
	// Strategy is the partition strategy (default hash edge-cut; the
	// multilevel strategy usually performs better).
	Strategy Strategy
	// Parallelism bounds how many workers run concurrently (default =
	// Workers).
	Parallelism int
}

func (o Options) engine() *core.Engine {
	return core.New(core.Options{
		Workers:     o.Workers,
		Strategy:    o.Strategy,
		Parallelism: o.Parallelism,
	})
}

// Run executes an arbitrary PIE program, for callers that wrote their own.
func Run(g *Graph, query any, prog Program, opts Options) (*Result, error) {
	return opts.engine().Run(g, query, prog)
}

// RunSSSP computes single-source shortest paths from source and returns the
// distance of every vertex (+Inf when unreachable).
func RunSSSP(g *Graph, source VertexID, opts Options) (map[VertexID]float64, *Stats, error) {
	res, err := opts.engine().Run(g, source, pie.SSSP{})
	if err != nil {
		return nil, nil, err
	}
	return res.Output.(map[VertexID]float64), res.Stats, nil
}

// RunCC computes connected components; the returned map assigns every vertex
// the smallest vertex ID of its component.
func RunCC(g *Graph, opts Options) (map[VertexID]VertexID, *Stats, error) {
	res, err := opts.engine().Run(g, nil, pie.CC{})
	if err != nil {
		return nil, nil, err
	}
	return res.Output.(map[VertexID]VertexID), res.Stats, nil
}

// RunSim computes graph-pattern matching via graph simulation: the maximum
// relation from pattern vertices to matching data vertices.
func RunSim(g, pattern *Graph, opts Options) (SimResult, *Stats, error) {
	res, err := opts.engine().Run(g, pattern, pie.Sim{})
	if err != nil {
		return nil, nil, err
	}
	return res.Output.(SimResult), res.Stats, nil
}

// RunSubIso computes graph-pattern matching via subgraph isomorphism,
// returning every match (maxMatches <= 0 means unlimited).
func RunSubIso(g, pattern *Graph, maxMatches int, opts Options) ([]Match, *Stats, error) {
	res, err := opts.engine().Run(g, pattern, pie.SubIso{MaxMatches: maxMatches})
	if err != nil {
		return nil, nil, err
	}
	return res.Output.([]Match), res.Stats, nil
}

// RunCF trains a collaborative-filtering model over a bipartite rating graph
// whose user vertices are labeled "user" and product vertices "product", with
// edge weights holding the observed ratings.
func RunCF(g *Graph, query CFQuery, opts Options) (CFModel, *Stats, error) {
	res, err := opts.engine().Run(g, query, pie.CF{})
	if err != nil {
		return CFModel{}, nil, err
	}
	return res.Output.(CFModel), res.Stats, nil
}

// DefaultCFQuery returns a sensible CF configuration for the given training
// fraction (e.g. 0.9 trains on 90% of the observed ratings).
func DefaultCFQuery(trainFraction float64) CFQuery { return pie.DefaultCFQuery(trainFraction) }

// RunPageRank computes PageRank scores normalized to sum to |V|.
func RunPageRank(g *Graph, opts Options) (map[VertexID]float64, *Stats, error) {
	res, err := opts.engine().Run(g, pie.DefaultPageRankQuery(), pie.PageRank{})
	if err != nil {
		return nil, nil, err
	}
	return res.Output.(map[VertexID]float64), res.Stats, nil
}
