// Package grape is the public facade of the GRAPE reproduction: a parallel
// engine that parallelizes sequential graph algorithms by combining partial
// evaluation and incremental computation (Fan et al., "Parallelizing
// Sequential Graph Computations", SIGMOD 2017).
//
// The package re-exports the building blocks a downstream user needs — the
// graph model, the partition strategies, the PIE programming model and the
// engine — and provides one-call helpers for the five query classes of the
// paper (SSSP, CC, Sim, SubIso, CF) plus PageRank.
//
// A minimal program:
//
//	b := grape.NewGraphBuilder(true)
//	b.AddEdge(1, 2, 1.0, "")
//	b.AddEdge(2, 3, 2.5, "")
//	g := b.Build()
//	dist, stats, err := grape.RunSSSP(g, 1, grape.Options{Workers: 4})
//
// Callers issuing many queries over one graph should open a Session, which
// partitions the graph once and keeps the worker cluster resident ("the
// graph is partitioned once for all queries Q posed on G", Section 3.1):
//
//	s, err := grape.NewSession(g, grape.Options{Workers: 4})
//	defer s.Close()
//	dist1, _, err := s.SSSP(1)   // safe to call concurrently
//	dist2, _, err := s.SSSP(2)
//	comps, _, err := s.CC()
//
// Sessions are mutable: ApplyUpdates absorbs batches of edge/vertex changes
// by rebuilding only the affected fragments, and MaterializeSSSP /
// MaterializeCC / Materialize register live views whose answers are
// maintained incrementally after every batch (see grape_update.go).
//
// Queries run on one of two execution planes. The default BSP plane is the
// paper's superstep loop; the asynchronous plane (adaptive asynchronous
// parallelization) lets workers keep evaluating on whatever messages have
// already arrived instead of idling at superstep barriers, which removes the
// straggler cost of BSP. Select it per session with Options.Mode, or per
// query with Session.WithMode:
//
//	s, err := grape.NewSession(g, grape.Options{Workers: 8})
//	dist, _, err := s.WithMode(grape.Async).SSSP(1)
//
// Async runs are supported by SSSP, CC and PageRank (programs whose update
// accumulation is monotone and idempotent, so delivery order cannot change
// the fixpoint); Sim, SubIso and CF are BSP-only and return
// ErrAsyncUnsupported when forced onto the async plane.
//
// Sessions can also span processes: with Options.Distributed set, the
// coordinator ships each fragment to a grape-worker process over TCP and
// queries evaluate in the workers (SSSP, CC and PageRank, both planes),
// producing the same answers as the in-process transport — including graph
// updates and materialized views, whose deltas and maintenance rounds travel
// over the same wire. See Distributed and ServeWorker.
//
// See the examples/ directory for complete programs.
package grape

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"time"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/metrics"
	grapenet "grape/internal/mpi/net"
	"grape/internal/obs"
	"grape/internal/partition"
	"grape/internal/pie"
	"grape/internal/seq"
)

// Re-exported core types. The aliases give external callers stable names for
// the engine's types without reaching into internal packages.
type (
	// Graph is an immutable directed or undirected labeled graph.
	Graph = graph.Graph
	// GraphBuilder accumulates vertices and edges.
	GraphBuilder = graph.Builder
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// Program is a PIE program (PEval, IncEval, Assemble, Aggregate).
	Program = core.Program
	// Query is the opaque query value handed to a PIE program (needed to
	// implement Program's Assemble signature outside this module).
	Query = core.Query
	// Context is the per-fragment context handed to PIE programs.
	Context = core.Context
	// EngineOptions configures the engine directly for advanced use.
	EngineOptions = core.Options
	// Result is a full engine result (output, stats, contexts).
	Result = core.Result
	// Stats reports time, supersteps and communication volume.
	Stats = metrics.Stats
	// Strategy is a graph partition strategy.
	Strategy = partition.Strategy
	// SimResult is a graph-simulation relation.
	SimResult = seq.SimResult
	// Match is one subgraph-isomorphism match.
	Match = seq.Match
	// CFModel is a trained collaborative-filtering model.
	CFModel = pie.CFModel
	// CFQuery configures collaborative filtering.
	CFQuery = pie.CFQuery
	// Mode selects the execution plane queries run on (BSP or Async).
	Mode = core.ExecMode
)

// Execution planes.
const (
	// BSP is the bulk-synchronous plane: superstep barriers, deterministic,
	// supports every program. The default.
	BSP = core.ModeBSP
	// Async is the adaptive asynchronous plane: workers evaluate on whatever
	// messages have arrived, with no superstep barriers. Supported by SSSP,
	// CC and PageRank.
	Async = core.ModeAsync
)

// ErrAsyncUnsupported is returned when the async plane is requested for a
// program that has not declared async-safe accumulation (Sim, SubIso, CF).
var ErrAsyncUnsupported = core.ErrAsyncUnsupported

// ErrDistributedUnsupported is returned by graph updates and materialized
// views on distributed sessions whose transport cannot ship update deltas.
// The built-in TCP transport supports them, so sessions opened through
// Options.Distributed never return it.
var ErrDistributedUnsupported = core.ErrDistributedUnsupported

// WorkerLostError reports that a worker process of a distributed session
// died or became unreachable: its connection broke or it stopped answering
// heartbeats. Queries and updates that failed because of it return errors
// matchable with errors.As:
//
//	var lost *grape.WorkerLostError
//	if errors.As(err, &lost) {
//	    log.Printf("lost worker %d hosting fragments %v", lost.Proc, lost.Fragments)
//	}
//
// With Options.Recovery set the session absorbs worker loss itself —
// fragments are reassigned and queries restarted — so this error only
// surfaces once the retry budget is exhausted (or recovery is disabled).
type WorkerLostError = grapenet.WorkerLostError

// ParseMode converts a flag value ("bsp" or "async") into a Mode.
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// NewGraphBuilder returns a builder for a directed (true) or undirected
// (false) graph.
func NewGraphBuilder(directed bool) *GraphBuilder { return graph.NewBuilder(directed) }

// ReadGraph parses a graph from the text edge-list format (see
// internal/graph's documentation; plain "src dst weight" lines also work).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// PartitionStrategy looks up a partition strategy by name: "hash", "range",
// "ldg", "multilevel" or "vertexcut". It returns false for unknown names.
func PartitionStrategy(name string) (Strategy, bool) { return partition.ByName(name) }

// Distributed configures a multi-process session: the coordinator listens
// on Listen, waits for WorkerProcs grape-worker processes to dial in, deals
// the fragments to them round-robin and ships each over the wire; queries
// then evaluate in the worker processes while the coordinator keeps the
// mailboxes, barriers and assembly. Supported programs are SSSP, CC and
// PageRank (the ones with wire codecs for their query and partial result),
// on both the BSP and the async execution plane.
//
// Distributed sessions are fully dynamic: ApplyUpdates routes each batch at
// the coordinator and ships the rebuilt fragments to the worker processes as
// a new epoch (queries in flight keep reading the epoch they started on),
// and MaterializeSSSP/MaterializeCC/Materialize keep their per-fragment
// state resident in the workers, where maintenance rounds run EvalDelta and
// the IncEval fixpoint — the same answers, over either transport.
type Distributed struct {
	// Listen is the coordinator's TCP address, e.g. "127.0.0.1:9091". Port 0
	// binds an ephemeral port (use OnListen to learn it).
	Listen string
	// WorkerProcs is the number of worker processes the coordinator waits
	// for. It must be between 1 and the number of fragments.
	WorkerProcs int
	// HandshakeTimeout bounds waiting for the worker processes to connect
	// and install their fragments (default 60s).
	HandshakeTimeout time.Duration
	// Heartbeat is the liveness-probe interval: the coordinator pings every
	// worker process and declares one dead — failing its in-flight and
	// future queries with an error naming the lost fragments — when pings go
	// unanswered. Zero selects the transport default (10s); negative
	// disables probing.
	Heartbeat time.Duration
	// OnListen, when non-nil, receives the bound listen address before the
	// coordinator starts waiting for workers — the hook tests and embedders
	// use to start workers against an ephemeral port.
	OnListen func(addr string)
}

// Recovery enables fault tolerance and elasticity on a distributed session.
// The nil pointer (the default) keeps fail-stop behavior: a worker-process
// death fails its queries with a WorkerLostError and update batches stay
// disabled after a failed ship.
//
// With Recovery set, the session instead absorbs worker churn:
//
//   - In-flight BSP queries checkpoint a consistent cut every Interval
//     supersteps (every rank's state plus the undelivered messages, taken at
//     a superstep barrier).
//   - When a worker process dies, its fragments are re-shipped from the
//     coordinator's resident replica to the surviving processes and failed
//     queries restart — from the last cut when one exists, from scratch
//     otherwise — up to MaxRetries times.
//   - Fresh worker processes may join the cluster mid-session (grape-worker
//     -join); the session rebalances fragments onto them live.
//
// The zero value selects defaults for every field.
type Recovery struct {
	// Interval is the number of BSP supersteps between consistent cuts. Zero
	// means 16; negative disables checkpointing (restarts re-run from
	// scratch). Shorter intervals bound replayed work at the price of one
	// extra snapshot round trip per interval.
	Interval int
	// MaxRetries caps how many times one query is restarted after worker
	// loss. Zero means 2.
	MaxRetries int
}

// Options configure the one-call helpers below.
type Options struct {
	// Workers is the number of fragments/workers (default 1).
	Workers int
	// Strategy is the partition strategy (default hash edge-cut; the
	// multilevel strategy usually performs better).
	Strategy Strategy
	// Parallelism is the intra-fragment sweep-pool width: programs that
	// declare a data-parallel sweep (SSSP, CC, PageRank) chunk their dense
	// vertex ranges over up to this many goroutines inside each PEval or
	// IncEval, with results byte-identical to the sequential plane. Zero or
	// one selects the sequential legacy reference path; the CLIs default
	// their -parallelism flag to GOMAXPROCS.
	Parallelism int
	// Mode is the default execution plane (BSP unless set to Async).
	// Individual queries can override it with Session.WithMode.
	Mode Mode
	// Distributed, when non-nil, runs the session over a multi-process TCP
	// cluster instead of in-process goroutines. See Distributed.
	Distributed *Distributed
	// Recovery, when non-nil, makes a distributed session fault-tolerant and
	// elastic: worker deaths are recovered by fragment reassignment and query
	// restart, and fresh worker processes can join mid-session. Nil keeps
	// fail-stop behavior. Ignored without Distributed. See Recovery.
	Recovery *Recovery
	// DebugListen, when non-empty, serves the session's debug HTTP endpoint
	// on the given address ("127.0.0.1:0" binds an ephemeral port — see
	// Session.DebugAddr): /metrics exposes the engine's Prometheus counters
	// (on distributed sessions including every worker process's counters,
	// re-labeled with a proc label), /healthz answers liveness probes, and
	// /debug/pprof/* serves the stdlib profiling handlers.
	DebugListen string
	// NoMetrics turns the observability plane off: no counters, no traces.
	// Exists so the benchmark harness can measure instrumentation overhead;
	// per-query Stats are collected either way.
	NoMetrics bool
}

func (o Options) core() core.Options {
	co := core.Options{
		Workers:     o.Workers,
		Strategy:    o.Strategy,
		Parallelism: o.Parallelism,
		Mode:        o.Mode,
		NoMetrics:   o.NoMetrics,
	}
	if o.Recovery != nil {
		co.Recovery = &core.RecoveryOptions{Interval: o.Recovery.Interval, MaxRetries: o.Recovery.MaxRetries}
	}
	return co
}

// Session serves many queries over a graph that is partitioned exactly once:
// the fragments stay resident in a persistent worker/coordinator cluster, so
// every query pays only its own evaluation time, amortizing partitioning and
// cluster setup over the whole stream. All methods are safe to call from
// many goroutines concurrently; each query runs in its own BSP contexts with
// its own message mailboxes and Stats.
//
// Close the session when done; the one-call RunXXX helpers below remain the
// convenient form for single-query use.
type Session struct {
	s     *core.Session
	mode  Mode
	debug *obs.DebugServer // non-nil iff Options.DebugListen was set
}

// NewSession partitions g once with the configured strategy and brings up
// the resident worker cluster — in-process goroutines by default, or a
// multi-process TCP cluster when Options.Distributed is set.
func NewSession(g *Graph, opts Options) (*Session, error) {
	if opts.Distributed != nil {
		return newDistributedSession(g, opts)
	}
	s, err := core.NewSession(g, opts.core())
	if err != nil {
		return nil, err
	}
	debug, err := serveDebug(opts)
	if err != nil {
		s.Close()
		return nil, err
	}
	return &Session{s: s, mode: opts.Mode, debug: debug}, nil
}

// serveDebug starts the session's debug endpoint when configured. It serves
// the process-wide default registry: engine, communication and wire counters
// all register there.
func serveDebug(opts Options) (*obs.DebugServer, error) {
	if opts.DebugListen == "" {
		return nil, nil
	}
	return obs.Serve(opts.DebugListen, obs.Default)
}

// newDistributedSession partitions g at the coordinator, brings up the TCP
// worker cluster and ships every fragment to its hosting process.
func newDistributedSession(g *Graph, opts Options) (*Session, error) {
	d := opts.Distributed
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	if d.WorkerProcs < 1 || d.WorkerProcs > workers {
		return nil, fmt.Errorf("grape: %d worker processes for %d fragments (want 1..%d)",
			d.WorkerProcs, workers, workers)
	}
	strat := opts.Strategy
	if strat == nil {
		strat = partition.Hash{}
	}
	p := partition.Partition(g, workers, strat)

	ln, err := grapenet.Listen(d.Listen)
	if err != nil {
		return nil, err
	}
	ln.Heartbeat = d.Heartbeat
	// Elastic clusters keep the listener open after bring-up so replacement
	// or additional workers can join mid-session.
	ln.Elastic = opts.Recovery != nil
	if d.OnListen != nil {
		d.OnListen(ln.Addr())
	}
	cl, err := ln.Serve(p, d.WorkerProcs, d.HandshakeTimeout)
	if err != nil {
		return nil, err
	}
	peers := make([]core.RemotePeer, len(p.Fragments))
	for i := range peers {
		peers[i] = cl.Peer(i)
	}
	s, err := core.NewSessionRemote(p, opts.core(), cl, peers)
	if err != nil {
		cl.Close()
		return nil, err
	}
	debug, err := serveDebug(opts)
	if err != nil {
		s.Close()
		return nil, err
	}
	if debug != nil {
		// A coordinator scrape polls every worker process for its counters
		// and merges them in, each sample labeled with its proc id, so
		// /metrics shows whole-cluster truth from one endpoint.
		debug.AddCollector(cl.WorkerSamples)
	}
	return &Session{s: s, mode: opts.Mode, debug: debug}, nil
}

// WorkerOptions configure ServeWorker.
type WorkerOptions struct {
	// DialTimeout is the total budget for dialing the coordinator with
	// exponential backoff (workers may start before the coordinator listens).
	// Zero means 30 seconds.
	DialTimeout time.Duration
	// Log, when non-nil, receives progress lines (dial retries, handshake,
	// shutdown) as structured records. Nil is silent.
	Log *slog.Logger
	// DebugListen, when non-empty, serves this worker process's own debug
	// endpoint (/metrics, /healthz, /debug/pprof/*). The per-connection call
	// counters also travel to the coordinator over the stats call regardless.
	DebugListen string
	// Parallelism is the intra-fragment sweep-pool width this worker process
	// grants ParallelCapable programs (see Options.Parallelism). It is a
	// process-local setting: the coordinator's evaluation calls do not carry
	// it. Zero or one keeps the sequential legacy path.
	Parallelism int
	// Join makes the worker enter an already running elastic cluster
	// (Options.Recovery on the coordinator side) instead of taking part in
	// the initial bring-up: it is admitted with a fresh process id and no
	// fragments, and receives fragments through the session's live
	// rebalancing. Joining a non-elastic cluster fails the handshake.
	Join bool
}

// ServeWorker runs this process as a grape worker: it dials the coordinator
// (retrying with backoff until the dial budget runs out, so workers may
// start before the coordinator), hosts the fragments shipped to it, serves
// PEval/IncEval calls for the full program catalog, and returns nil when the
// coordinator shuts the cluster down. cmd/grape-worker is a thin wrapper
// around this.
func ServeWorker(coordinator string, opts WorkerOptions) error {
	return ServeWorkerCtx(context.Background(), coordinator, opts)
}

// ServeWorkerCtx is ServeWorker bound to a context: cancellation aborts the
// dial backoff or closes the serving connection, and the context's error is
// returned.
func ServeWorkerCtx(ctx context.Context, coordinator string, opts WorkerOptions) error {
	host := core.NewWorkerHost(pie.ByName)
	host.SetParallelism(opts.Parallelism)
	reg := obs.NewRegistry()
	if opts.DebugListen != "" {
		srv, err := obs.Serve(opts.DebugListen, obs.Default)
		if err != nil {
			return err
		}
		srv.AddCollector(reg.Gather)
		defer srv.Close()
	}
	return grapenet.RunWorkerCtx(ctx, coordinator, host, grapenet.WorkerOptions{
		DialTimeout: opts.DialTimeout, Log: opts.Log, Metrics: reg, Join: opts.Join})
}

// Compile-time check that the engine's worker host satisfies the transport's
// handler contract (the two packages are only structurally coupled).
var _ grapenet.Handler = (*core.WorkerHost)(nil)

// WithMode returns a handle over the same resident session whose queries run
// on the given execution plane — a per-query override of Options.Mode. The
// returned handle shares cluster, fragments, views and epochs with s (and
// Close on either closes both); only the plane differs:
//
//	fast, _, err := s.WithMode(grape.Async).SSSP(src)
func (s *Session) WithMode(mode Mode) *Session {
	return &Session{s: s.s, mode: mode, debug: s.debug}
}

// ExecMode returns the execution plane this handle runs queries on.
func (s *Session) ExecMode() Mode { return s.mode }

// DebugAddr returns the bound address of the session's debug endpoint, e.g.
// "127.0.0.1:43117", or "" when Options.DebugListen was not set.
func (s *Session) DebugAddr() string {
	if s.debug == nil {
		return ""
	}
	return s.debug.Addr()
}

// Close stops accepting new queries and waits for in-flight ones to finish.
func (s *Session) Close() error {
	if s.debug != nil {
		s.debug.Close()
	}
	return s.s.Close()
}

// Queries reports how many queries the session has served.
func (s *Session) Queries() int64 { return s.s.Queries() }

// NumFragments returns the number of resident fragments (workers) the graph
// was partitioned into.
func (s *Session) NumFragments() int { return s.s.NumFragments() }

// Run executes an arbitrary PIE program over the resident fragments on the
// handle's execution plane, for callers that wrote their own.
func (s *Session) Run(prog Program, query any) (*Result, error) {
	return s.s.RunMode(query, prog, s.mode)
}

// SSSP computes single-source shortest paths from source and returns the
// distance of every vertex (+Inf when unreachable).
func (s *Session) SSSP(source VertexID) (map[VertexID]float64, *Stats, error) {
	res, err := s.s.RunMode(source, pie.SSSP{}, s.mode)
	if err != nil {
		return nil, nil, err
	}
	return res.Output.(map[VertexID]float64), res.Stats, nil
}

// CC computes connected components; the returned map assigns every vertex
// the smallest vertex ID of its component.
func (s *Session) CC() (map[VertexID]VertexID, *Stats, error) {
	res, err := s.s.RunMode(nil, pie.CC{}, s.mode)
	if err != nil {
		return nil, nil, err
	}
	return res.Output.(map[VertexID]VertexID), res.Stats, nil
}

// Sim computes graph-pattern matching via graph simulation: the maximum
// relation from pattern vertices to matching data vertices.
func (s *Session) Sim(pattern *Graph) (SimResult, *Stats, error) {
	res, err := s.s.RunMode(pattern, pie.Sim{}, s.mode)
	if err != nil {
		return nil, nil, err
	}
	return res.Output.(SimResult), res.Stats, nil
}

// SubIso computes graph-pattern matching via subgraph isomorphism, returning
// every match (maxMatches <= 0 means unlimited).
func (s *Session) SubIso(pattern *Graph, maxMatches int) ([]Match, *Stats, error) {
	res, err := s.s.RunMode(pattern, pie.SubIso{MaxMatches: maxMatches}, s.mode)
	if err != nil {
		return nil, nil, err
	}
	return res.Output.([]Match), res.Stats, nil
}

// CF trains a collaborative-filtering model over a bipartite rating graph
// whose user vertices are labeled "user" and product vertices "product",
// with edge weights holding the observed ratings.
func (s *Session) CF(query CFQuery) (CFModel, *Stats, error) {
	res, err := s.s.RunMode(query, pie.CF{}, s.mode)
	if err != nil {
		return CFModel{}, nil, err
	}
	return res.Output.(CFModel), res.Stats, nil
}

// PageRank computes PageRank scores normalized to sum to |V|.
func (s *Session) PageRank() (map[VertexID]float64, *Stats, error) {
	res, err := s.s.RunMode(pie.DefaultPageRankQuery(), pie.PageRank{}, s.mode)
	if err != nil {
		return nil, nil, err
	}
	return res.Output.(map[VertexID]float64), res.Stats, nil
}

// The one-call helpers below run a single query on a throwaway session:
// partition, evaluate, tear down.

func withSession[T any](g *Graph, opts Options, fn func(*Session) (T, *Stats, error)) (T, *Stats, error) {
	s, err := NewSession(g, opts)
	if err != nil {
		var zero T
		return zero, nil, err
	}
	defer s.Close()
	return fn(s)
}

// Run executes an arbitrary PIE program, for callers that wrote their own.
func Run(g *Graph, query any, prog Program, opts Options) (*Result, error) {
	s, err := NewSession(g, opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Run(prog, query)
}

// RunSSSP computes single-source shortest paths from source and returns the
// distance of every vertex (+Inf when unreachable).
func RunSSSP(g *Graph, source VertexID, opts Options) (map[VertexID]float64, *Stats, error) {
	return withSession(g, opts, func(s *Session) (map[VertexID]float64, *Stats, error) {
		return s.SSSP(source)
	})
}

// RunCC computes connected components; the returned map assigns every vertex
// the smallest vertex ID of its component.
func RunCC(g *Graph, opts Options) (map[VertexID]VertexID, *Stats, error) {
	return withSession(g, opts, func(s *Session) (map[VertexID]VertexID, *Stats, error) {
		return s.CC()
	})
}

// RunSim computes graph-pattern matching via graph simulation: the maximum
// relation from pattern vertices to matching data vertices.
func RunSim(g, pattern *Graph, opts Options) (SimResult, *Stats, error) {
	return withSession(g, opts, func(s *Session) (SimResult, *Stats, error) {
		return s.Sim(pattern)
	})
}

// RunSubIso computes graph-pattern matching via subgraph isomorphism,
// returning every match (maxMatches <= 0 means unlimited).
func RunSubIso(g, pattern *Graph, maxMatches int, opts Options) ([]Match, *Stats, error) {
	return withSession(g, opts, func(s *Session) ([]Match, *Stats, error) {
		return s.SubIso(pattern, maxMatches)
	})
}

// RunCF trains a collaborative-filtering model over a bipartite rating graph
// whose user vertices are labeled "user" and product vertices "product", with
// edge weights holding the observed ratings.
func RunCF(g *Graph, query CFQuery, opts Options) (CFModel, *Stats, error) {
	return withSession(g, opts, func(s *Session) (CFModel, *Stats, error) {
		return s.CF(query)
	})
}

// DefaultCFQuery returns a sensible CF configuration for the given training
// fraction (e.g. 0.9 trains on 90% of the observed ratings).
func DefaultCFQuery(trainFraction float64) CFQuery { return pie.DefaultCFQuery(trainFraction) }

// RunPageRank computes PageRank scores normalized to sum to |V|.
func RunPageRank(g *Graph, opts Options) (map[VertexID]float64, *Stats, error) {
	return withSession(g, opts, func(s *Session) (map[VertexID]float64, *Stats, error) {
		return s.PageRank()
	})
}
